//! Logical query plans, with conversion to the FLEX analysis IR.

use crate::expr::Expr;
use crate::value::Value;

/// Aggregates the executor supports.
#[derive(Debug, Clone, PartialEq)]
pub enum Aggregate {
    /// `COUNT(*)`.
    CountStar,
    /// `SUM(expr)`.
    Sum(Expr),
}

/// A logical relational plan.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan a catalog table.
    Scan {
        /// Table name.
        table: String,
    },
    /// Keep rows satisfying the predicate.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Boolean predicate.
        predicate: Expr,
    },
    /// Equi-join on one column pair.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join column on the left schema.
        left_key: String,
        /// Join column on the right schema.
        right_key: String,
    },
    /// Keep only the named columns.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Columns to keep (qualified or unambiguous suffix names).
        columns: Vec<String>,
    },
    /// Reduce to a scalar.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// The aggregate to compute.
        agg: Aggregate,
    },
    /// One aggregate value per distinct key (SQL `GROUP BY`).
    GroupBy {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Grouping column.
        key: String,
        /// Aggregate computed per group.
        agg: Aggregate,
    },
}

impl LogicalPlan {
    /// Scan builder.
    pub fn scan(table: impl Into<String>) -> LogicalPlan {
        LogicalPlan::Scan {
            table: table.into(),
        }
    }

    /// Filter builder.
    pub fn filter(self, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Join builder.
    pub fn join(
        self,
        right: LogicalPlan,
        left_key: impl Into<String>,
        right_key: impl Into<String>,
    ) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            left_key: left_key.into(),
            right_key: right_key.into(),
        }
    }

    /// Projection builder.
    pub fn project(self, columns: &[&str]) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            columns: columns.iter().map(|c| c.to_string()).collect(),
        }
    }

    /// `COUNT(*)` builder.
    pub fn count(self) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(self),
            agg: Aggregate::CountStar,
        }
    }

    /// `SUM(expr)` builder.
    pub fn sum(self, expr: Expr) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(self),
            agg: Aggregate::Sum(expr),
        }
    }

    /// `GROUP BY key` builder.
    pub fn group_by(self, key: impl Into<String>, agg: Aggregate) -> LogicalPlan {
        LogicalPlan::GroupBy {
            input: Box::new(self),
            key: key.into(),
            agg,
        }
    }

    /// Converts to the operator-composition plan FLEX analyses. The
    /// conversion is *lossy by design*: predicates become opaque
    /// descriptions and SUM becomes the unsupported aggregate — exactly
    /// the information loss that makes the static baseline inaccurate.
    pub fn to_flex(&self) -> upa_flex::Plan {
        match self {
            LogicalPlan::Scan { table } => upa_flex::Plan::table(table.clone()),
            LogicalPlan::Filter { input, predicate } => {
                upa_flex::Plan::filter(input.to_flex(), format!("{predicate:?}"))
            }
            LogicalPlan::Join {
                left,
                right,
                left_key,
                right_key,
            } => upa_flex::Plan::join(
                left.to_flex(),
                right.to_flex(),
                split_column(left_key),
                split_column(right_key),
            ),
            // Projection is invisible to sensitivity analysis.
            LogicalPlan::Project { input, .. } => input.to_flex(),
            LogicalPlan::Aggregate { input, agg }
            // A grouped count has the same per-record influence bound as
            // the ungrouped count (one record lands in one group), so
            // FLEX analyses the same operator composition.
            | LogicalPlan::GroupBy { input, agg, .. } => match agg {
                Aggregate::CountStar => upa_flex::Plan::count(input.to_flex()),
                Aggregate::Sum(_) => upa_flex::Plan::aggregate(
                    upa_flex::plan::AggregateKind::Sum,
                    input.to_flex(),
                ),
            },
        }
    }
}

/// Splits a qualified `table.column` name into FLEX's `(table, column)`
/// reference; unqualified names get an empty table.
fn split_column(name: &str) -> upa_flex::ColumnRef {
    match name.split_once('.') {
        Some((t, c)) => upa_flex::ColumnRef::new(t, c),
        None => upa_flex::ColumnRef::new("", name),
    }
}

/// Convenience literal constructors used by plan builders.
pub fn int(i: i64) -> Expr {
    Expr::lit(Value::Int(i))
}

/// Float literal.
pub fn float(f: f64) -> Expr {
    Expr::lit(Value::Float(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q4ish() -> LogicalPlan {
        LogicalPlan::scan("orders")
            .join(
                LogicalPlan::scan("lineitem"),
                "orders.orderkey",
                "lineitem.orderkey",
            )
            .filter(Expr::col("orders.orderdate").lt(int(100)))
            .count()
    }

    #[test]
    fn builders_compose() {
        let p = q4ish();
        match &p {
            LogicalPlan::Aggregate { agg, .. } => assert_eq!(*agg, Aggregate::CountStar),
            other => panic!("expected aggregate root, got {other:?}"),
        }
    }

    #[test]
    fn to_flex_preserves_operator_structure() {
        let flex = q4ish().to_flex();
        assert_eq!(flex.join_count(), 1);
        assert_eq!(flex.filter_count(), 1);
        let mut meta = upa_flex::Metadata::new();
        meta.set_max_freq("orders", "orderkey", 1);
        meta.set_max_freq("lineitem", "orderkey", 9);
        assert_eq!(upa_flex::analyze(&flex, &meta).unwrap(), 9.0);
    }

    #[test]
    fn to_flex_marks_sum_unsupported() {
        let p = LogicalPlan::scan("lineitem").sum(Expr::col("price"));
        assert!(upa_flex::analyze(&p.to_flex(), &upa_flex::Metadata::new()).is_err());
    }

    #[test]
    fn projection_is_transparent_to_flex() {
        let p = LogicalPlan::scan("t").project(&["a"]).count();
        assert_eq!(
            upa_flex::analyze(&p.to_flex(), &upa_flex::Metadata::new()).unwrap(),
            1.0
        );
    }

    #[test]
    fn split_column_handles_unqualified() {
        let c = split_column("orderkey");
        assert_eq!(c.table, "");
        assert_eq!(c.column, "orderkey");
    }

    #[test]
    fn group_by_builder_and_flex_shape() {
        let p = LogicalPlan::scan("t").group_by("t.k", Aggregate::CountStar);
        match &p {
            LogicalPlan::GroupBy { key, .. } => assert_eq!(key, "t.k"),
            other => panic!("expected group-by, got {other:?}"),
        }
        assert_eq!(
            upa_flex::analyze(&p.to_flex(), &upa_flex::Metadata::new()).unwrap(),
            1.0
        );
    }
}
