//! A minimal relational query executor over the dataflow engine — the
//! **SparkSQL substitute** of the UPA reproduction.
//!
//! The paper runs seven of its nine queries as SparkSQL; FLEX consumes
//! their relational plans. This crate closes the loop: the same logical
//! plan that FLEX analyses statically can also be **executed** on the
//! dataflow engine, so the reproduction can check that the plan given to
//! FLEX computes the same answer as the hand-written Map/Reduce query
//! UPA runs.
//!
//! Components:
//!
//! * [`value`] — the dynamic [`value::Value`] cell type and row/schema
//!   representation;
//! * [`expr`] — a small expression language (column refs, literals,
//!   comparisons, boolean and arithmetic operators, `IN` lists), bound
//!   against a schema before evaluation;
//! * [`plan`] — the logical plan: `Scan`, `Filter`, `Join`, `Project`,
//!   `Aggregate` (COUNT(*)/SUM), plus conversion to the
//!   [`upa_flex::Plan`] the static baseline consumes;
//! * [`exec`] — the executor: binds expressions, runs scans/filters as
//!   narrow stages and joins through the engine's shuffle join.
//!
//! # Example
//!
//! ```
//! use dataflow::Context;
//! use upa_relational::exec::Catalog;
//! use upa_relational::expr::Expr;
//! use upa_relational::plan::LogicalPlan;
//! use upa_relational::value::{Relation, Schema, Value};
//!
//! let ctx = Context::with_threads(2);
//! let schema = Schema::new("t", &["k", "v"]);
//! let rows = vec![
//!     vec![Value::Int(1), Value::Float(10.0)],
//!     vec![Value::Int(2), Value::Float(20.0)],
//! ];
//! let mut catalog = Catalog::new();
//! catalog.register(Relation::from_rows(&ctx, schema, rows, 2));
//!
//! let plan = LogicalPlan::scan("t")
//!     .filter(Expr::col("t.k").gt(Expr::lit(Value::Int(1))))
//!     .count();
//! assert_eq!(catalog.execute(&plan).unwrap().as_scalar().unwrap(), 1.0);
//! ```

pub mod exec;
pub mod expr;
pub mod plan;
pub mod sqlparse;
pub mod value;

pub use exec::Catalog;
pub use expr::Expr;
pub use plan::LogicalPlan;
pub use sqlparse::parse_sql;
pub use value::{Relation, Row, Schema, Value};

/// Errors from planning or executing a relational query.
#[derive(Debug, Clone, PartialEq)]
pub enum RelError {
    /// Referenced table is not registered in the catalog.
    UnknownTable(String),
    /// Referenced column is absent from the input schema; the payload is
    /// `(column, schema columns)`.
    UnknownColumn(String, Vec<String>),
    /// An operator was applied to values of the wrong type.
    TypeMismatch(&'static str),
    /// A join key type that cannot be hashed (floats).
    UnhashableJoinKey(String),
    /// Aggregate applied to a non-numeric expression.
    NonNumericAggregate,
}

impl std::fmt::Display for RelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            RelError::UnknownColumn(c, have) => {
                write!(f, "unknown column '{c}' (have: {})", have.join(", "))
            }
            RelError::TypeMismatch(what) => write!(f, "type mismatch in {what}"),
            RelError::UnhashableJoinKey(c) => {
                write!(f, "join key '{c}' has a type that cannot be hashed")
            }
            RelError::NonNumericAggregate => write!(f, "aggregate input is not numeric"),
        }
    }
}

impl std::error::Error for RelError {}
