//! Dynamic values, rows, schemas and relations.

use dataflow::{Context, Dataset};

/// One cell of a row.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer (also used for keys and dates).
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Interned string.
    Str(std::sync::Arc<str>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(std::sync::Arc::from(s.as_ref()))
    }

    /// Numeric view (ints widen to float); `None` for non-numeric values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A hashable key view for joins (floats are rejected — equality on
    /// floats is not a sound join condition).
    pub fn join_key(&self) -> Option<JoinKey> {
        match self {
            Value::Int(i) => Some(JoinKey::Int(*i)),
            Value::Bool(b) => Some(JoinKey::Bool(*b)),
            Value::Str(s) => Some(JoinKey::Str(std::sync::Arc::clone(s))),
            Value::Float(_) => None,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

/// Hashable join key (no floats).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum JoinKey {
    /// Integer key.
    Int(i64),
    /// Boolean key.
    Bool(bool),
    /// String key.
    Str(std::sync::Arc<str>),
}

/// A row is a vector of cells, positionally matching its schema.
pub type Row = Vec<Value>;

/// Column names of a relation. Names are qualified as `table.column` at
/// scan time so that join outputs keep unambiguous names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<String>,
}

impl Schema {
    /// A schema whose columns are qualified with `table.`.
    pub fn new(table: &str, columns: &[&str]) -> Schema {
        Schema {
            columns: columns.iter().map(|c| format!("{table}.{c}")).collect(),
        }
    }

    /// A schema from already-qualified column names.
    pub fn from_qualified(columns: Vec<String>) -> Schema {
        Schema { columns }
    }

    /// The column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column; accepts either a fully qualified name or an
    /// unambiguous suffix (`"orderkey"` matching `"orders.orderkey"`).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        if let Some(i) = self.columns.iter().position(|c| c == name) {
            return Some(i);
        }
        let matches: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.ends_with(&format!(".{name}")))
            .map(|(i, _)| i)
            .collect();
        match matches.as_slice() {
            [only] => Some(*only),
            _ => None,
        }
    }

    /// Concatenates two schemas (join output).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }
}

/// A schema-carrying dataset of rows.
#[derive(Debug, Clone)]
pub struct Relation {
    name: String,
    schema: Schema,
    data: Dataset<Row>,
}

impl Relation {
    /// Builds a named relation by loading rows into the engine. The
    /// relation's name is taken from the first column's qualifier.
    ///
    /// # Panics
    ///
    /// Panics if any row's arity differs from the schema.
    pub fn from_rows(ctx: &Context, schema: Schema, rows: Vec<Row>, partitions: usize) -> Relation {
        assert!(
            rows.iter().all(|r| r.len() == schema.len()),
            "row arity must match the schema"
        );
        let name = schema
            .columns()
            .first()
            .and_then(|c| c.split('.').next())
            .unwrap_or("anonymous")
            .to_string();
        Relation {
            name,
            schema,
            data: ctx.parallelize(rows, partitions),
        }
    }

    /// Wraps an existing dataset (executor internal).
    pub(crate) fn from_dataset(name: String, schema: Schema, data: Dataset<Row>) -> Relation {
        Relation { name, schema, data }
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The row dataset.
    pub fn data(&self) -> &Dataset<Row> {
        &self.data
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(1).as_bool(), None);
        assert_eq!(Value::str("x").to_string(), "x");
    }

    #[test]
    fn join_keys_reject_floats() {
        assert!(Value::Int(1).join_key().is_some());
        assert!(Value::str("k").join_key().is_some());
        assert!(Value::Float(1.0).join_key().is_none());
        assert_eq!(Value::Int(5).join_key(), Value::Int(5).join_key());
    }

    #[test]
    fn schema_lookup_by_suffix_and_qualified() {
        let s = Schema::new("orders", &["orderkey", "custkey"]);
        assert_eq!(s.index_of("orders.orderkey"), Some(0));
        assert_eq!(s.index_of("custkey"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        // Ambiguous suffix resolves to none.
        let joined = s.concat(&Schema::new("lineitem", &["orderkey"]));
        assert_eq!(joined.index_of("orderkey"), None);
        assert_eq!(joined.index_of("lineitem.orderkey"), Some(2));
        assert_eq!(joined.len(), 3);
    }

    #[test]
    fn relation_checks_arity() {
        let ctx = Context::with_threads(1);
        let schema = Schema::new("t", &["a"]);
        let r = Relation::from_rows(&ctx, schema, vec![vec![Value::Int(1)]], 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.name(), "t");
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn relation_rejects_bad_rows() {
        let ctx = Context::with_threads(1);
        let schema = Schema::new("t", &["a", "b"]);
        let _ = Relation::from_rows(&ctx, schema, vec![vec![Value::Int(1)]], 1);
    }
}
