//! The expression language: column references, literals, comparisons,
//! boolean connectives, arithmetic and `IN` lists.
//!
//! Expressions are **bound** against a schema once ([`Expr::bind`]),
//! resolving column names to positional indices and reporting unknown
//! columns eagerly; the resulting [`BoundExpr`] evaluates per row without
//! name lookups.

use crate::value::{Row, Schema, Value};
use crate::RelError;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `%` (integer modulo)
    Mod,
}

/// An unbound expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference by (possibly suffix-qualified) name.
    Col(String),
    /// Literal value.
    Lit(Value),
    /// Comparison of two sub-expressions.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// Arithmetic on numeric sub-expressions.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Membership in a literal list.
    InList(Box<Expr>, Vec<Value>),
}

impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// Literal.
    pub fn lit(v: Value) -> Expr {
        Expr::Lit(v)
    }

    /// `self = rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(rhs))
    }

    /// `self <> rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(rhs))
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(rhs))
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(rhs))
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(rhs))
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(rhs))
    }

    /// `self AND rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    /// `self OR rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `self * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Add, Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// `self % rhs` (integers).
    pub fn modulo(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Mod, Box::new(self), Box::new(rhs))
    }

    /// `self IN (values…)`.
    pub fn in_list(self, values: Vec<Value>) -> Expr {
        Expr::InList(Box::new(self), values)
    }

    /// Resolves column references against `schema`.
    ///
    /// # Errors
    ///
    /// Returns [`RelError::UnknownColumn`] for unresolvable names.
    pub fn bind(&self, schema: &Schema) -> Result<BoundExpr, RelError> {
        Ok(match self {
            Expr::Col(name) => {
                BoundExpr::Col(schema.index_of(name).ok_or_else(|| {
                    RelError::UnknownColumn(name.clone(), schema.columns().to_vec())
                })?)
            }
            Expr::Lit(v) => BoundExpr::Lit(v.clone()),
            Expr::Cmp(op, a, b) => {
                BoundExpr::Cmp(*op, Box::new(a.bind(schema)?), Box::new(b.bind(schema)?))
            }
            Expr::And(a, b) => BoundExpr::And(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Expr::Or(a, b) => BoundExpr::Or(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Expr::Not(a) => BoundExpr::Not(Box::new(a.bind(schema)?)),
            Expr::Arith(op, a, b) => {
                BoundExpr::Arith(*op, Box::new(a.bind(schema)?), Box::new(b.bind(schema)?))
            }
            Expr::InList(a, values) => BoundExpr::InList(Box::new(a.bind(schema)?), values.clone()),
        })
    }
}

/// An expression with column references resolved to indices.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// Column by index.
    Col(usize),
    /// Literal.
    Lit(Value),
    /// Comparison.
    Cmp(CmpOp, Box<BoundExpr>, Box<BoundExpr>),
    /// Conjunction.
    And(Box<BoundExpr>, Box<BoundExpr>),
    /// Disjunction.
    Or(Box<BoundExpr>, Box<BoundExpr>),
    /// Negation.
    Not(Box<BoundExpr>),
    /// Arithmetic.
    Arith(ArithOp, Box<BoundExpr>, Box<BoundExpr>),
    /// List membership.
    InList(Box<BoundExpr>, Vec<Value>),
}

fn cmp_values(op: CmpOp, a: &Value, b: &Value) -> Result<bool, RelError> {
    // Numeric comparison when both sides are numeric; string/bool
    // equality otherwise.
    if let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) {
        return Ok(match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        });
    }
    match (op, a, b) {
        (CmpOp::Eq, x, y) => Ok(x == y),
        (CmpOp::Ne, x, y) => Ok(x != y),
        _ => Err(RelError::TypeMismatch(
            "ordered comparison of non-numeric values",
        )),
    }
}

impl BoundExpr {
    /// Evaluates against one row.
    ///
    /// # Errors
    ///
    /// Returns [`RelError::TypeMismatch`] when operators meet the wrong
    /// types.
    pub fn eval(&self, row: &Row) -> Result<Value, RelError> {
        Ok(match self {
            BoundExpr::Col(i) => row[*i].clone(),
            BoundExpr::Lit(v) => v.clone(),
            BoundExpr::Cmp(op, a, b) => Value::Bool(cmp_values(*op, &a.eval(row)?, &b.eval(row)?)?),
            BoundExpr::And(a, b) => Value::Bool(
                a.eval(row)?
                    .as_bool()
                    .ok_or(RelError::TypeMismatch("AND"))?
                    && b.eval(row)?
                        .as_bool()
                        .ok_or(RelError::TypeMismatch("AND"))?,
            ),
            BoundExpr::Or(a, b) => Value::Bool(
                a.eval(row)?.as_bool().ok_or(RelError::TypeMismatch("OR"))?
                    || b.eval(row)?.as_bool().ok_or(RelError::TypeMismatch("OR"))?,
            ),
            BoundExpr::Not(a) => Value::Bool(
                !a.eval(row)?
                    .as_bool()
                    .ok_or(RelError::TypeMismatch("NOT"))?,
            ),
            BoundExpr::Arith(op, a, b) => {
                let (av, bv) = (a.eval(row)?, b.eval(row)?);
                match (op, &av, &bv) {
                    (ArithOp::Mod, Value::Int(x), Value::Int(y)) => {
                        if *y == 0 {
                            return Err(RelError::TypeMismatch("modulo by zero"));
                        }
                        Value::Int(x % y)
                    }
                    (ArithOp::Mod, _, _) => {
                        return Err(RelError::TypeMismatch("modulo of non-integers"))
                    }
                    _ => {
                        let x = av.as_f64().ok_or(RelError::TypeMismatch("arithmetic"))?;
                        let y = bv.as_f64().ok_or(RelError::TypeMismatch("arithmetic"))?;
                        Value::Float(match op {
                            ArithOp::Add => x + y,
                            ArithOp::Sub => x - y,
                            ArithOp::Mul => x * y,
                            ArithOp::Mod => unreachable!("handled above"),
                        })
                    }
                }
            }
            BoundExpr::InList(a, values) => {
                let v = a.eval(row)?;
                Value::Bool(values.iter().any(|w| match (v.as_f64(), w.as_f64()) {
                    (Some(x), Some(y)) => x == y,
                    _ => v == *w,
                }))
            }
        })
    }

    /// Evaluates as a boolean predicate.
    ///
    /// # Errors
    ///
    /// Returns [`RelError::TypeMismatch`] if the expression is not
    /// boolean-valued.
    pub fn eval_bool(&self, row: &Row) -> Result<bool, RelError> {
        self.eval(row)?
            .as_bool()
            .ok_or(RelError::TypeMismatch("predicate must be boolean"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new("t", &["a", "b", "s"])
    }

    fn row() -> Row {
        vec![Value::Int(5), Value::Float(2.5), Value::str("hello")]
    }

    #[test]
    fn bind_resolves_and_rejects() {
        let s = schema();
        assert!(Expr::col("a").bind(&s).is_ok());
        assert!(Expr::col("t.b").bind(&s).is_ok());
        match Expr::col("zz").bind(&s) {
            Err(RelError::UnknownColumn(c, _)) => assert_eq!(c, "zz"),
            other => panic!("expected unknown column, got {other:?}"),
        }
    }

    #[test]
    fn comparisons_and_boolean_logic() {
        let s = schema();
        let e = Expr::col("a")
            .gt(Expr::lit(Value::Int(3)))
            .and(Expr::col("b").le(Expr::lit(Value::Float(2.5))))
            .bind(&s)
            .unwrap();
        assert!(e.eval_bool(&row()).unwrap());
        let e2 = Expr::col("a")
            .lt(Expr::lit(Value::Int(3)))
            .bind(&s)
            .unwrap();
        assert!(!e2.eval_bool(&row()).unwrap());
        let e3 = Expr::col("a")
            .eq(Expr::lit(Value::Int(5)))
            .or(Expr::lit(Value::Bool(false)))
            .bind(&s)
            .unwrap();
        assert!(e3.eval_bool(&row()).unwrap());
        let e4 = Expr::col("a")
            .eq(Expr::lit(Value::Int(5)))
            .not()
            .bind(&s)
            .unwrap();
        assert!(!e4.eval_bool(&row()).unwrap());
    }

    #[test]
    fn mixed_numeric_comparison_widens() {
        let s = schema();
        // Int column vs float literal.
        let e = Expr::col("a")
            .ge(Expr::lit(Value::Float(4.5)))
            .bind(&s)
            .unwrap();
        assert!(e.eval_bool(&row()).unwrap());
    }

    #[test]
    fn string_equality_but_not_ordering() {
        let s = schema();
        let eq = Expr::col("s")
            .eq(Expr::lit(Value::str("hello")))
            .bind(&s)
            .unwrap();
        assert!(eq.eval_bool(&row()).unwrap());
        let lt = Expr::col("s")
            .lt(Expr::lit(Value::str("z")))
            .bind(&s)
            .unwrap();
        assert!(lt.eval_bool(&row()).is_err());
    }

    #[test]
    fn arithmetic_and_modulo() {
        let s = schema();
        let e = Expr::col("a").mul(Expr::col("b")).bind(&s).unwrap();
        assert_eq!(e.eval(&row()).unwrap(), Value::Float(12.5));
        let m = Expr::col("a")
            .modulo(Expr::lit(Value::Int(3)))
            .bind(&s)
            .unwrap();
        assert_eq!(m.eval(&row()).unwrap(), Value::Int(2));
        let bad = Expr::col("s")
            .add(Expr::lit(Value::Int(1)))
            .bind(&s)
            .unwrap();
        assert!(bad.eval(&row()).is_err());
        let div0 = Expr::col("a")
            .modulo(Expr::lit(Value::Int(0)))
            .bind(&s)
            .unwrap();
        assert!(div0.eval(&row()).is_err());
    }

    #[test]
    fn in_list_membership() {
        let s = schema();
        let e = Expr::col("a")
            .in_list(vec![Value::Int(1), Value::Int(5)])
            .bind(&s)
            .unwrap();
        assert!(e.eval_bool(&row()).unwrap());
        let e2 = Expr::col("a")
            .in_list(vec![Value::Int(2)])
            .bind(&s)
            .unwrap();
        assert!(!e2.eval_bool(&row()).unwrap());
    }

    #[test]
    fn non_boolean_predicate_is_rejected() {
        let s = schema();
        let e = Expr::col("a").bind(&s).unwrap();
        assert!(e.eval_bool(&row()).is_err());
    }
}
