//! A SQL parser for the executor's supported fragment.
//!
//! The paper's analysts submit SparkSQL text; this module parses the
//! fragment the engine executes into a [`LogicalPlan`]:
//!
//! ```sql
//! SELECT COUNT(*) | SUM(expr) | key, COUNT(*) | key, SUM(expr)
//! FROM table
//! [JOIN table ON col = col]...
//! [WHERE expr]
//! [GROUP BY key]
//! ```
//!
//! with expressions over columns, numeric/string/boolean literals,
//! comparisons (`= <> < <= > >=`), `AND`/`OR`/`NOT`, arithmetic
//! (`+ - * %`) and `IN (...)` lists. Keywords are case-insensitive.
//!
//! # Example
//!
//! ```
//! use upa_relational::sqlparse::parse_sql;
//! let plan = parse_sql(
//!     "SELECT COUNT(*) FROM orders \
//!      JOIN lineitem ON orders.orderkey = lineitem.orderkey \
//!      WHERE orders.orderdate < 100",
//! )
//! .unwrap();
//! assert_eq!(plan.to_flex().join_count(), 1);
//! ```

use crate::expr::Expr;
use crate::plan::LogicalPlan;
use crate::value::Value;

/// A SQL parse error with position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input where the problem was detected.
    pub position: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SQL parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Symbol(&'static str),
}

struct Lexer<'a> {
    input: &'a str,
    pos: usize,
    tokens: Vec<(Token, usize)>,
}

impl<'a> Lexer<'a> {
    fn tokenize(input: &'a str) -> Result<Vec<(Token, usize)>, ParseError> {
        let mut lx = Lexer {
            input,
            pos: 0,
            tokens: Vec::new(),
        };
        lx.run()?;
        Ok(lx.tokens)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.pos,
        }
    }

    fn rest(&self) -> &str {
        &self.input[self.pos..]
    }

    fn run(&mut self) -> Result<(), ParseError> {
        while self.pos < self.input.len() {
            let c = self.rest().chars().next().expect("pos < len");
            if c.is_whitespace() {
                self.pos += c.len_utf8();
                continue;
            }
            let start = self.pos;
            if c.is_ascii_alphabetic() || c == '_' {
                let end = self
                    .rest()
                    .find(|ch: char| !(ch.is_ascii_alphanumeric() || ch == '_' || ch == '.'))
                    .map(|o| self.pos + o)
                    .unwrap_or(self.input.len());
                let word = self.input[self.pos..end].to_string();
                self.pos = end;
                self.tokens.push((Token::Ident(word), start));
            } else if c.is_ascii_digit() {
                let end = self
                    .rest()
                    .find(|ch: char| !(ch.is_ascii_digit() || ch == '.'))
                    .map(|o| self.pos + o)
                    .unwrap_or(self.input.len());
                let text = &self.input[self.pos..end];
                self.pos = end;
                let token = if text.contains('.') {
                    Token::Float(
                        text.parse()
                            .map_err(|_| self.error(format!("bad number '{text}'")))?,
                    )
                } else {
                    Token::Int(
                        text.parse()
                            .map_err(|_| self.error(format!("bad number '{text}'")))?,
                    )
                };
                self.tokens.push((token, start));
            } else if c == '\'' {
                let body_start = self.pos + 1;
                let rel = self.input[body_start..]
                    .find('\'')
                    .ok_or_else(|| self.error("unterminated string literal"))?;
                let text = self.input[body_start..body_start + rel].to_string();
                self.pos = body_start + rel + 1;
                self.tokens.push((Token::Str(text), start));
            } else {
                let two = &self.rest()[..self.rest().len().min(2)];
                let sym: &'static str = match two {
                    "<=" => "<=",
                    ">=" => ">=",
                    "<>" => "<>",
                    "!=" => "<>",
                    _ => match c {
                        '(' => "(",
                        ')' => ")",
                        ',' => ",",
                        '*' => "*",
                        '=' => "=",
                        '<' => "<",
                        '>' => ">",
                        '+' => "+",
                        '-' => "-",
                        '%' => "%",
                        other => return Err(self.error(format!("unexpected character '{other}'"))),
                    },
                };
                self.pos += sym.len();
                self.tokens.push((Token::Symbol(sym), start));
            }
        }
        Ok(())
    }
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn error_here(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self
                .tokens
                .get(self.pos)
                .map(|(_, p)| *p)
                .unwrap_or(self.input_len),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consumes a case-insensitive keyword.
    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(w)) = self.peek() {
            if w.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.keyword(kw) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected {kw}")))
        }
    }

    fn symbol(&mut self, sym: &str) -> bool {
        if let Some(Token::Symbol(s)) = self.peek() {
            if *s == sym {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), ParseError> {
        if self.symbol(sym) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected '{sym}'")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(w)) => Ok(w),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error_here("expected an identifier"))
            }
        }
    }

    fn query(&mut self) -> Result<LogicalPlan, ParseError> {
        self.expect_keyword("SELECT")?;
        // Optional grouping column before the aggregate:
        // `SELECT key, COUNT(*) … GROUP BY key`.
        let group_col = if matches!(self.peek(), Some(Token::Ident(w))
            if !w.eq_ignore_ascii_case("COUNT") && !w.eq_ignore_ascii_case("SUM"))
        {
            let col = self.ident()?;
            if matches!(self.peek(), Some(Token::Symbol("("))) {
                // `AVG(x)` etc. — an unsupported aggregate, not a group key.
                return Err(self.error_here("expected COUNT(*) or SUM(expr)"));
            }
            self.expect_symbol(",")?;
            Some(col)
        } else {
            None
        };
        // Aggregate head.
        let sum_expr = if self.keyword("COUNT") {
            self.expect_symbol("(")?;
            self.expect_symbol("*")?;
            self.expect_symbol(")")?;
            None
        } else if self.keyword("SUM") {
            self.expect_symbol("(")?;
            let e = self.expr()?;
            self.expect_symbol(")")?;
            Some(e)
        } else {
            return Err(self.error_here("expected COUNT(*) or SUM(expr)"));
        };

        self.expect_keyword("FROM")?;
        let mut plan = LogicalPlan::scan(self.ident()?);
        while self.keyword("JOIN") {
            let table = self.ident()?;
            self.expect_keyword("ON")?;
            let left_key = self.ident()?;
            self.expect_symbol("=")?;
            let right_key = self.ident()?;
            plan = plan.join(LogicalPlan::scan(table), left_key, right_key);
        }
        if self.keyword("WHERE") {
            let predicate = self.expr()?;
            plan = plan.filter(predicate);
        }
        let group_by = if self.keyword("GROUP") {
            self.expect_keyword("BY")?;
            Some(self.ident()?)
        } else {
            None
        };
        if self.pos != self.tokens.len() {
            return Err(self.error_here("trailing input after query"));
        }
        let agg = match sum_expr {
            Some(e) => crate::plan::Aggregate::Sum(e),
            None => crate::plan::Aggregate::CountStar,
        };
        match (group_col, group_by) {
            (None, None) => Ok(LogicalPlan::Aggregate {
                input: Box::new(plan),
                agg,
            }),
            (Some(sel), Some(key)) => {
                if sel != key {
                    return Err(self.error_here(format!(
                        "selected column '{sel}' must match GROUP BY column '{key}'"
                    )));
                }
                Ok(plan.group_by(key, agg))
            }
            (Some(_), None) => Err(self.error_here("selected a column without GROUP BY")),
            (None, Some(_)) => Err(self.error_here("GROUP BY requires the key in the SELECT list")),
        }
    }

    // Precedence climbing: OR < AND < NOT < cmp/IN < add < mul.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.keyword("OR") {
            left = left.or(self.and_expr()?);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.not_expr()?;
        while self.keyword("AND") {
            left = left.and(self.not_expr()?);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.keyword("NOT") {
            Ok(self.not_expr()?.not())
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let left = self.add_expr()?;
        if self.keyword("IN") {
            self.expect_symbol("(")?;
            let mut values = vec![self.literal()?];
            while self.symbol(",") {
                values.push(self.literal()?);
            }
            self.expect_symbol(")")?;
            return Ok(left.in_list(values));
        }
        for (sym, build) in [
            ("<=", Expr::le as fn(Expr, Expr) -> Expr),
            (">=", Expr::ge),
            ("<>", Expr::ne),
            ("=", Expr::eq),
            ("<", Expr::lt),
            (">", Expr::gt),
        ] {
            if self.symbol(sym) {
                let right = self.add_expr()?;
                return Ok(build(left, right));
            }
        }
        Ok(left)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.mul_expr()?;
        loop {
            if self.symbol("+") {
                left = left.add(self.mul_expr()?);
            } else if self.symbol("-") {
                left = left.sub(self.mul_expr()?);
            } else {
                return Ok(left);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary_expr()?;
        loop {
            if self.symbol("*") {
                left = left.mul(self.unary_expr()?);
            } else if self.symbol("%") {
                left = left.modulo(self.unary_expr()?);
            } else {
                return Ok(left);
            }
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.symbol("(") {
            let e = self.expr()?;
            self.expect_symbol(")")?;
            return Ok(e);
        }
        match self.peek() {
            Some(Token::Int(_)) | Some(Token::Float(_)) | Some(Token::Str(_)) => {
                Ok(Expr::lit(self.literal()?))
            }
            Some(Token::Ident(w)) if w.eq_ignore_ascii_case("true") => {
                self.pos += 1;
                Ok(Expr::lit(Value::Bool(true)))
            }
            Some(Token::Ident(w)) if w.eq_ignore_ascii_case("false") => {
                self.pos += 1;
                Ok(Expr::lit(Value::Bool(false)))
            }
            Some(Token::Ident(_)) => Ok(Expr::col(self.ident()?)),
            _ => Err(self.error_here("expected an expression")),
        }
    }

    fn literal(&mut self) -> Result<Value, ParseError> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Value::Int(i)),
            Some(Token::Float(f)) => Ok(Value::Float(f)),
            Some(Token::Str(s)) => Ok(Value::str(s)),
            Some(Token::Ident(w)) if w.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
            Some(Token::Ident(w)) if w.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error_here("expected a literal"))
            }
        }
    }
}

/// Parses one SQL statement into a [`LogicalPlan`].
///
/// # Errors
///
/// Returns a [`ParseError`] with a byte position for malformed input or
/// constructs outside the supported fragment.
pub fn parse_sql(sql: &str) -> Result<LogicalPlan, ParseError> {
    let tokens = Lexer::tokenize(sql)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        input_len: sql.len(),
    };
    parser.query()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Catalog;
    use crate::value::{Relation, Row, Schema};
    use dataflow::Context;

    #[test]
    fn parses_plain_count() {
        let plan = parse_sql("SELECT COUNT(*) FROM lineitem").unwrap();
        assert_eq!(plan, LogicalPlan::scan("lineitem").count());
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let a = parse_sql("select count(*) from t where x > 1").unwrap();
        let b = parse_sql("SELECT COUNT(*) FROM t WHERE x > 1").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parses_join_and_where() {
        let plan = parse_sql(
            "SELECT COUNT(*) FROM orders \
             JOIN lineitem ON orders.orderkey = lineitem.orderkey \
             WHERE orders.orderdate >= 730 AND orders.orderdate < 820",
        )
        .unwrap();
        let flex = plan.to_flex();
        assert_eq!(flex.join_count(), 1);
        assert_eq!(flex.filter_count(), 1);
    }

    #[test]
    fn parses_sum_with_arithmetic() {
        let plan =
            parse_sql("SELECT SUM(extendedprice * discount) FROM lineitem WHERE quantity < 24.0")
                .unwrap();
        match plan {
            LogicalPlan::Aggregate { .. } => {}
            other => panic!("expected aggregate, got {other:?}"),
        }
    }

    #[test]
    fn parses_in_list_not_and_precedence() {
        let plan = parse_sql(
            "SELECT COUNT(*) FROM part WHERE size IN (1, 4, 9) AND NOT brand = 12 OR typ % 5 <> 0",
        )
        .unwrap();
        // OR binds loosest: (IN AND NOT =) OR (<>).
        match plan {
            LogicalPlan::Aggregate { input, .. } => match *input {
                LogicalPlan::Filter { predicate, .. } => match predicate {
                    Expr::Or(_, _) => {}
                    other => panic!("expected OR at top, got {other:?}"),
                },
                other => panic!("expected filter, got {other:?}"),
            },
            other => panic!("expected aggregate, got {other:?}"),
        }
    }

    #[test]
    fn reports_errors_with_position() {
        for (sql, needle) in [
            ("", "expected SELECT"),
            ("SELECT AVG(x) FROM t", "COUNT(*) or SUM"),
            ("SELECT COUNT(*) FROM", "identifier"),
            ("SELECT COUNT(*) FROM t WHERE", "expression"),
            ("SELECT COUNT(*) FROM t extra", "trailing"),
            ("SELECT COUNT(*) FROM t WHERE x = 'oops", "unterminated"),
            ("SELECT COUNT(*) FROM t WHERE x ~ 1", "unexpected character"),
        ] {
            let err = parse_sql(sql).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{sql}: expected '{needle}' in '{}'",
                err.message
            );
        }
    }

    #[test]
    fn parsed_plans_execute() {
        let ctx = Context::with_threads(2);
        let mut catalog = Catalog::new();
        let rows: Vec<Row> = (0..100)
            .map(|i| vec![Value::Int(i), Value::Float((i % 10) as f64)])
            .collect();
        catalog.register(Relation::from_rows(
            &ctx,
            Schema::new("t", &["k", "v"]),
            rows,
            2,
        ));
        let count = parse_sql("SELECT COUNT(*) FROM t WHERE t.v >= 5.0").unwrap();
        assert_eq!(catalog.execute(&count).unwrap().as_scalar().unwrap(), 50.0);
        let sum = parse_sql("SELECT SUM(v * 2.0) FROM t WHERE k < 10").unwrap();
        assert_eq!(
            catalog.execute(&sum).unwrap().as_scalar().unwrap(),
            (0..10).map(|i| (i % 10) as f64 * 2.0).sum::<f64>()
        );
        let joined = parse_sql("SELECT COUNT(*) FROM t JOIN t ON t.k = t.k").unwrap();
        assert_eq!(
            catalog.execute(&joined).unwrap().as_scalar().unwrap(),
            100.0
        );
    }

    #[test]
    fn string_literals_compare() {
        let ctx = Context::with_threads(1);
        let mut catalog = Catalog::new();
        catalog.register(Relation::from_rows(
            &ctx,
            Schema::new("t", &["name"]),
            vec![vec![Value::str("alice")], vec![Value::str("bob")]],
            1,
        ));
        let plan = parse_sql("SELECT COUNT(*) FROM t WHERE name = 'alice'").unwrap();
        assert_eq!(catalog.execute(&plan).unwrap().as_scalar().unwrap(), 1.0);
    }

    #[test]
    fn parses_group_by() {
        let plan = parse_sql("SELECT grp, COUNT(*) FROM t WHERE v > 1 GROUP BY grp").unwrap();
        match plan {
            LogicalPlan::GroupBy { key, .. } => assert_eq!(key, "grp"),
            other => panic!("expected group-by, got {other:?}"),
        }
        let sum = parse_sql("SELECT grp, SUM(v) FROM t GROUP BY grp").unwrap();
        assert!(matches!(sum, LogicalPlan::GroupBy { .. }));
    }

    #[test]
    fn group_by_shape_errors() {
        assert!(parse_sql("SELECT grp, COUNT(*) FROM t")
            .unwrap_err()
            .message
            .contains("without GROUP BY"));
        assert!(parse_sql("SELECT COUNT(*) FROM t GROUP BY grp")
            .unwrap_err()
            .message
            .contains("requires the key"));
        assert!(parse_sql("SELECT a, COUNT(*) FROM t GROUP BY b")
            .unwrap_err()
            .message
            .contains("must match"));
    }

    #[test]
    fn group_by_executes() {
        let ctx = Context::with_threads(2);
        let mut catalog = Catalog::new();
        let rows: Vec<Row> = (0..90)
            .map(|i| vec![Value::Int(i % 3), Value::Float(i as f64)])
            .collect();
        catalog.register(Relation::from_rows(
            &ctx,
            Schema::new("t", &["grp", "v"]),
            rows,
            2,
        ));
        let plan = parse_sql("SELECT grp, COUNT(*) FROM t GROUP BY grp").unwrap();
        let out = catalog.execute(&plan).unwrap();
        let rel = out.as_rows().unwrap();
        assert_eq!(rel.len(), 3);
        for row in rel.data().collect() {
            assert_eq!(row[1], Value::Float(30.0));
        }
    }
}
