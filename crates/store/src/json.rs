//! A minimal JSON reader/writer for manifests — hand-rolled like the
//! server's wire module, but private to this crate so the dependency
//! arrow keeps pointing server → store.

use std::collections::BTreeMap;

/// A parsed JSON value. Object keys are sorted (`BTreeMap`) so
/// re-serialisation is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer (rejects fractions,
    /// negatives and anything above 2^53 where f64 loses exactness).
    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// Appends `s` as a JSON string literal (quotes and escapes included).
pub(crate) fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub(crate) fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, what: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&what) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at offset {pos}",
            char::from(what),
            pos = *pos
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad keyword at offset {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number '{text}' at offset {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        // Manifests never emit surrogate pairs; lone
                        // surrogates decode to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 passes through untouched: find the
                // char boundary and copy the whole scalar.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = parse(r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": 7}}"#).unwrap();
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_u64(), Some(7));
        let arr = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[2].as_str(), Some("x\n"));
        assert_eq!(arr[3], Json::Bool(true));
        assert_eq!(arr[4], Json::Null);
    }

    #[test]
    fn string_literal_round_trips() {
        let nasty = "quote\" slash\\ tab\t newline\n ünïcode \u{1}";
        let mut out = String::new();
        push_str_literal(&mut out, nasty);
        assert_eq!(parse(&out).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn as_u64_is_exact() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1e300").unwrap().as_u64(), None);
    }
}
