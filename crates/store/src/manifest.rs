//! The per-dataset JSON manifest: schema, row count, chunk list and
//! format version. The manifest is the only name→file indirection in
//! the store — chunk files carry opaque generated names (`c0-1.bin`),
//! so hostile column names never touch the filesystem.
//!
//! # Manifest versions
//!
//! * **v1** — chunk list only (file, rows, crc).
//! * **v2** — adds per-chunk statistics (`min_bits`, `max_bits`,
//!   `nan_count`): min/max over non-NaN values as f64 **bit patterns in
//!   hex**, because JSON numbers can neither carry ±inf nor round-trip
//!   a u64 bit pattern exactly. The stats value count is the chunk's
//!   `rows`. v1 manifests still load; absent stats simply disable
//!   chunk pruning.
//!
//! The chunk *file* format is unchanged (still version 1); only the
//! manifest schema grew.

use dataflow::columnar::ChunkStats;

use crate::json::{self, Json};

/// File name of the manifest inside a dataset directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Current manifest schema version (chunk statistics included).
pub const MANIFEST_FORMAT_VERSION: u32 = 2;

/// One chunk of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkMeta {
    /// File name inside the dataset directory.
    pub file: String,
    /// Number of values in the chunk.
    pub rows: u64,
    /// The chunk file's FNV-1a trailer, repeated here so a chunk file
    /// swapped for another (self-consistent) one is still caught.
    pub crc: u32,
    /// Ingest-time value statistics (v2 manifests); `None` for v1 data.
    pub stats: Option<ChunkStats>,
}

/// One column and its chunk list, in row order.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMeta {
    /// Column name as ingested.
    pub name: String,
    /// Chunks concatenated in order reconstruct the column.
    pub chunks: Vec<ChunkMeta>,
}

impl ColumnMeta {
    /// The union of this column's chunk statistics, or `None` when any
    /// chunk lacks them (v1 data).
    #[must_use]
    pub fn stats(&self) -> Option<ChunkStats> {
        let mut acc: Option<ChunkStats> = None;
        for chunk in &self.chunks {
            let s = chunk.stats.as_ref()?;
            acc = Some(match acc {
                Some(a) => a.merge(s),
                None => *s,
            });
        }
        acc.or(Some(ChunkStats::compute(&[])))
    }
}

/// The dataset manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Manifest schema version the dataset was written with.
    pub format_version: u32,
    /// Dataset name (matches the directory name).
    pub dataset: String,
    /// Total row count; every column's chunks sum to this.
    pub rows: u64,
    /// Columns in ingest order.
    pub columns: Vec<ColumnMeta>,
}

impl Manifest {
    /// Serialises to the on-disk JSON form (deterministic field order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"format_version\":");
        out.push_str(&self.format_version.to_string());
        out.push_str(",\"dataset\":");
        json::push_str_literal(&mut out, &self.dataset);
        out.push_str(",\"rows\":");
        out.push_str(&self.rows.to_string());
        out.push_str(",\"columns\":[");
        for (i, col) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::push_str_literal(&mut out, &col.name);
            out.push_str(",\"chunks\":[");
            for (j, chunk) in col.chunks.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"file\":");
                json::push_str_literal(&mut out, &chunk.file);
                out.push_str(",\"rows\":");
                out.push_str(&chunk.rows.to_string());
                out.push_str(",\"crc\":");
                out.push_str(&chunk.crc.to_string());
                if let Some(stats) = &chunk.stats {
                    out.push_str(",\"min_bits\":\"");
                    out.push_str(&format!("{:016x}", stats.min.to_bits()));
                    out.push_str("\",\"max_bits\":\"");
                    out.push_str(&format!("{:016x}", stats.max.to_bits()));
                    out.push_str("\",\"nan_count\":");
                    out.push_str(&stats.nan_count.to_string());
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}\n");
        out
    }

    /// Parses and validates a manifest document.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first structural problem:
    /// bad JSON, missing fields, an unsupported format version, or
    /// per-column chunk rows that do not sum to the dataset row count.
    pub fn from_json(text: &str) -> Result<Manifest, String> {
        let doc = json::parse(text).map_err(|e| format!("manifest is not JSON: {e}"))?;
        let format_version = field_u64(&doc, "format_version")?;
        let format_version =
            u32::try_from(format_version).map_err(|_| "format_version out of range".to_string())?;
        if format_version == 0 || format_version > MANIFEST_FORMAT_VERSION {
            return Err(format!(
                "unsupported manifest format version {format_version}"
            ));
        }
        let dataset = doc
            .get("dataset")
            .and_then(Json::as_str)
            .ok_or("manifest missing 'dataset'")?
            .to_string();
        let rows = field_u64(&doc, "rows")?;
        let columns_json = doc
            .get("columns")
            .and_then(Json::as_arr)
            .ok_or("manifest missing 'columns'")?;
        let mut columns = Vec::with_capacity(columns_json.len());
        for col in columns_json {
            let name = col
                .get("name")
                .and_then(Json::as_str)
                .ok_or("column missing 'name'")?
                .to_string();
            let chunks_json = col
                .get("chunks")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("column '{name}' missing 'chunks'"))?;
            let mut chunks = Vec::with_capacity(chunks_json.len());
            let mut total = 0u64;
            for chunk in chunks_json {
                let file = chunk
                    .get("file")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("column '{name}': chunk missing 'file'"))?
                    .to_string();
                if file.contains('/') || file.contains('\\') || file.starts_with('.') {
                    return Err(format!("column '{name}': suspicious chunk file '{file}'"));
                }
                let chunk_rows = field_u64(chunk, "rows")
                    .map_err(|e| format!("column '{name}', chunk '{file}': {e}"))?;
                let crc = field_u64(chunk, "crc")
                    .map_err(|e| format!("column '{name}', chunk '{file}': {e}"))?;
                let crc =
                    u32::try_from(crc).map_err(|_| format!("column '{name}': crc out of range"))?;
                total = total
                    .checked_add(chunk_rows)
                    .ok_or_else(|| format!("column '{name}': chunk rows overflow"))?;
                let stats = match chunk.get("min_bits") {
                    Some(_) => Some(ChunkStats {
                        min: field_f64_bits(chunk, "min_bits")
                            .map_err(|e| format!("column '{name}', chunk '{file}': {e}"))?,
                        max: field_f64_bits(chunk, "max_bits")
                            .map_err(|e| format!("column '{name}', chunk '{file}': {e}"))?,
                        count: chunk_rows,
                        nan_count: field_u64(chunk, "nan_count")
                            .map_err(|e| format!("column '{name}', chunk '{file}': {e}"))?,
                    }),
                    None => None,
                };
                chunks.push(ChunkMeta {
                    file,
                    rows: chunk_rows,
                    crc,
                    stats,
                });
            }
            if total != rows {
                return Err(format!(
                    "column '{name}': chunks hold {total} rows, manifest says {rows}"
                ));
            }
            columns.push(ColumnMeta { name, chunks });
        }
        let mut names: Vec<&str> = columns.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        if names.windows(2).any(|w| w[0] == w[1]) {
            return Err("duplicate column name in manifest".into());
        }
        Ok(Manifest {
            format_version,
            dataset,
            rows,
            columns,
        })
    }

    /// Total bytes the dataset occupies once resident (values only).
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.rows * 8 * self.columns.len() as u64
    }

    /// Column names in ingest order.
    #[must_use]
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer '{key}'"))
}

/// Reads an f64 stored as a 16-hex-digit bit pattern. Bit patterns (not
/// JSON numbers) so ±inf and exact values survive the round trip.
fn field_f64_bits(doc: &Json, key: &str) -> Result<f64, String> {
    let text = doc
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string '{key}'"))?;
    if text.len() != 16 {
        return Err(format!("'{key}' is not 16 hex digits"));
    }
    u64::from_str_radix(text, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("'{key}' is not 16 hex digits"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(min: f64, max: f64, count: u64, nan_count: u64) -> Option<ChunkStats> {
        Some(ChunkStats {
            min,
            max,
            count,
            nan_count,
        })
    }

    fn sample() -> Manifest {
        Manifest {
            format_version: MANIFEST_FORMAT_VERSION,
            dataset: "adult".into(),
            rows: 5,
            columns: vec![
                ColumnMeta {
                    name: "age".into(),
                    chunks: vec![
                        ChunkMeta {
                            file: "c0-0.bin".into(),
                            rows: 3,
                            crc: 17,
                            stats: stats(17.0, 41.0, 3, 0),
                        },
                        ChunkMeta {
                            file: "c0-1.bin".into(),
                            rows: 2,
                            crc: 99,
                            stats: stats(30.0, 55.0, 2, 0),
                        },
                    ],
                },
                ColumnMeta {
                    name: "hours \"odd\" name".into(),
                    chunks: vec![ChunkMeta {
                        file: "c1-0.bin".into(),
                        rows: 5,
                        crc: 3,
                        stats: stats(12.0, 45.0, 5, 0),
                    }],
                },
            ],
        }
    }

    #[test]
    fn round_trips() {
        let m = sample();
        assert_eq!(Manifest::from_json(&m.to_json()).unwrap(), m);
    }

    #[test]
    fn rejects_row_count_mismatch() {
        let mut m = sample();
        m.rows = 6;
        let err = Manifest::from_json(&m.to_json()).unwrap_err();
        assert!(err.contains("rows"), "unexpected error: {err}");
    }

    #[test]
    fn rejects_duplicate_columns_and_bad_files() {
        let mut m = sample();
        m.columns[1].name = "age".into();
        assert!(Manifest::from_json(&m.to_json())
            .unwrap_err()
            .contains("duplicate"));

        let mut m = sample();
        m.columns[0].chunks[0].file = "../escape.bin".into();
        assert!(Manifest::from_json(&m.to_json())
            .unwrap_err()
            .contains("suspicious"));
    }

    #[test]
    fn rejects_future_version_and_garbage() {
        let text = sample()
            .to_json()
            .replace("\"format_version\":2", "\"format_version\":3");
        assert!(Manifest::from_json(&text).unwrap_err().contains("version"));
        let text = sample()
            .to_json()
            .replace("\"format_version\":2", "\"format_version\":0");
        assert!(Manifest::from_json(&text).unwrap_err().contains("version"));
        assert!(Manifest::from_json("not json").is_err());
    }

    #[test]
    fn stats_round_trip_nan_and_infinities_exactly() {
        let mut m = sample();
        m.rows = 3;
        m.columns = vec![ColumnMeta {
            name: "v".into(),
            chunks: vec![ChunkMeta {
                file: "c0-0.bin".into(),
                rows: 3,
                crc: 1,
                stats: stats(f64::NEG_INFINITY, f64::INFINITY, 3, 2),
            }],
        }];
        let back = Manifest::from_json(&m.to_json()).unwrap();
        let s = back.columns[0].chunks[0].stats.unwrap();
        assert_eq!(s.min, f64::NEG_INFINITY);
        assert_eq!(s.max, f64::INFINITY);
        assert_eq!(s.nan_count, 2);
        assert_eq!(s.count, 3);

        // An all-NaN chunk has the empty range (+inf, -inf).
        let empty = ChunkStats::compute(&[f64::NAN]);
        m.columns[0].chunks[0].stats = Some(ChunkStats { count: 3, ..empty });
        let back = Manifest::from_json(&m.to_json()).unwrap();
        let s = back.columns[0].chunks[0].stats.unwrap();
        assert_eq!(s.min.to_bits(), f64::INFINITY.to_bits());
        assert_eq!(s.max.to_bits(), f64::NEG_INFINITY.to_bits());
    }

    #[test]
    fn v1_manifest_without_stats_still_loads() {
        // The exact document a pre-stats build wrote: version 1, no
        // stats fields anywhere.
        let text = concat!(
            "{\"format_version\":1,\"dataset\":\"old\",\"rows\":4,",
            "\"columns\":[{\"name\":\"v\",\"chunks\":[",
            "{\"file\":\"c0-0.bin\",\"rows\":4,\"crc\":123}]}]}\n"
        );
        let m = Manifest::from_json(text).unwrap();
        assert_eq!(m.format_version, 1);
        assert_eq!(m.columns[0].chunks[0].stats, None);
        assert_eq!(m.columns[0].stats(), None, "no stats means no pruning");
    }

    #[test]
    fn column_stats_union_chunks() {
        let m = sample();
        let s = m.columns[0].stats().unwrap();
        assert_eq!((s.min, s.max), (17.0, 55.0));
        assert_eq!(s.count, 5);
    }

    #[test]
    fn resident_bytes_counts_values() {
        assert_eq!(sample().resident_bytes(), 5 * 8 * 2);
    }
}
