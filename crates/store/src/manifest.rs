//! The per-dataset JSON manifest: schema, row count, chunk list and
//! format version. The manifest is the only name→file indirection in
//! the store — chunk files carry opaque generated names (`c0-1.bin`),
//! so hostile column names never touch the filesystem.

use crate::chunk::CHUNK_FORMAT_VERSION;
use crate::json::{self, Json};

/// File name of the manifest inside a dataset directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// One chunk of one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkMeta {
    /// File name inside the dataset directory.
    pub file: String,
    /// Number of values in the chunk.
    pub rows: u64,
    /// The chunk file's FNV-1a trailer, repeated here so a chunk file
    /// swapped for another (self-consistent) one is still caught.
    pub crc: u32,
}

/// One column and its chunk list, in row order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnMeta {
    /// Column name as ingested.
    pub name: String,
    /// Chunks concatenated in order reconstruct the column.
    pub chunks: Vec<ChunkMeta>,
}

/// The dataset manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Chunk format version the dataset was written with.
    pub format_version: u32,
    /// Dataset name (matches the directory name).
    pub dataset: String,
    /// Total row count; every column's chunks sum to this.
    pub rows: u64,
    /// Columns in ingest order.
    pub columns: Vec<ColumnMeta>,
}

impl Manifest {
    /// Serialises to the on-disk JSON form (deterministic field order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"format_version\":");
        out.push_str(&self.format_version.to_string());
        out.push_str(",\"dataset\":");
        json::push_str_literal(&mut out, &self.dataset);
        out.push_str(",\"rows\":");
        out.push_str(&self.rows.to_string());
        out.push_str(",\"columns\":[");
        for (i, col) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::push_str_literal(&mut out, &col.name);
            out.push_str(",\"chunks\":[");
            for (j, chunk) in col.chunks.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"file\":");
                json::push_str_literal(&mut out, &chunk.file);
                out.push_str(",\"rows\":");
                out.push_str(&chunk.rows.to_string());
                out.push_str(",\"crc\":");
                out.push_str(&chunk.crc.to_string());
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}\n");
        out
    }

    /// Parses and validates a manifest document.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first structural problem:
    /// bad JSON, missing fields, an unsupported format version, or
    /// per-column chunk rows that do not sum to the dataset row count.
    pub fn from_json(text: &str) -> Result<Manifest, String> {
        let doc = json::parse(text).map_err(|e| format!("manifest is not JSON: {e}"))?;
        let format_version = field_u64(&doc, "format_version")?;
        let format_version =
            u32::try_from(format_version).map_err(|_| "format_version out of range".to_string())?;
        if format_version != CHUNK_FORMAT_VERSION {
            return Err(format!(
                "unsupported manifest format version {format_version}"
            ));
        }
        let dataset = doc
            .get("dataset")
            .and_then(Json::as_str)
            .ok_or("manifest missing 'dataset'")?
            .to_string();
        let rows = field_u64(&doc, "rows")?;
        let columns_json = doc
            .get("columns")
            .and_then(Json::as_arr)
            .ok_or("manifest missing 'columns'")?;
        let mut columns = Vec::with_capacity(columns_json.len());
        for col in columns_json {
            let name = col
                .get("name")
                .and_then(Json::as_str)
                .ok_or("column missing 'name'")?
                .to_string();
            let chunks_json = col
                .get("chunks")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("column '{name}' missing 'chunks'"))?;
            let mut chunks = Vec::with_capacity(chunks_json.len());
            let mut total = 0u64;
            for chunk in chunks_json {
                let file = chunk
                    .get("file")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("column '{name}': chunk missing 'file'"))?
                    .to_string();
                if file.contains('/') || file.contains('\\') || file.starts_with('.') {
                    return Err(format!("column '{name}': suspicious chunk file '{file}'"));
                }
                let chunk_rows = field_u64(chunk, "rows")
                    .map_err(|e| format!("column '{name}', chunk '{file}': {e}"))?;
                let crc = field_u64(chunk, "crc")
                    .map_err(|e| format!("column '{name}', chunk '{file}': {e}"))?;
                let crc =
                    u32::try_from(crc).map_err(|_| format!("column '{name}': crc out of range"))?;
                total = total
                    .checked_add(chunk_rows)
                    .ok_or_else(|| format!("column '{name}': chunk rows overflow"))?;
                chunks.push(ChunkMeta {
                    file,
                    rows: chunk_rows,
                    crc,
                });
            }
            if total != rows {
                return Err(format!(
                    "column '{name}': chunks hold {total} rows, manifest says {rows}"
                ));
            }
            columns.push(ColumnMeta { name, chunks });
        }
        let mut names: Vec<&str> = columns.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        if names.windows(2).any(|w| w[0] == w[1]) {
            return Err("duplicate column name in manifest".into());
        }
        Ok(Manifest {
            format_version,
            dataset,
            rows,
            columns,
        })
    }

    /// Total bytes the dataset occupies once resident (values only).
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.rows * 8 * self.columns.len() as u64
    }

    /// Column names in ingest order.
    #[must_use]
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer '{key}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            format_version: CHUNK_FORMAT_VERSION,
            dataset: "adult".into(),
            rows: 5,
            columns: vec![
                ColumnMeta {
                    name: "age".into(),
                    chunks: vec![
                        ChunkMeta {
                            file: "c0-0.bin".into(),
                            rows: 3,
                            crc: 17,
                        },
                        ChunkMeta {
                            file: "c0-1.bin".into(),
                            rows: 2,
                            crc: 99,
                        },
                    ],
                },
                ColumnMeta {
                    name: "hours \"odd\" name".into(),
                    chunks: vec![ChunkMeta {
                        file: "c1-0.bin".into(),
                        rows: 5,
                        crc: 3,
                    }],
                },
            ],
        }
    }

    #[test]
    fn round_trips() {
        let m = sample();
        assert_eq!(Manifest::from_json(&m.to_json()).unwrap(), m);
    }

    #[test]
    fn rejects_row_count_mismatch() {
        let mut m = sample();
        m.rows = 6;
        let err = Manifest::from_json(&m.to_json()).unwrap_err();
        assert!(err.contains("rows"), "unexpected error: {err}");
    }

    #[test]
    fn rejects_duplicate_columns_and_bad_files() {
        let mut m = sample();
        m.columns[1].name = "age".into();
        assert!(Manifest::from_json(&m.to_json())
            .unwrap_err()
            .contains("duplicate"));

        let mut m = sample();
        m.columns[0].chunks[0].file = "../escape.bin".into();
        assert!(Manifest::from_json(&m.to_json())
            .unwrap_err()
            .contains("suspicious"));
    }

    #[test]
    fn rejects_future_version_and_garbage() {
        let text = sample()
            .to_json()
            .replace("\"format_version\":1", "\"format_version\":2");
        assert!(Manifest::from_json(&text).unwrap_err().contains("version"));
        assert!(Manifest::from_json("not json").is_err());
    }

    #[test]
    fn resident_bytes_counts_values() {
        assert_eq!(sample().resident_bytes(), 5 * 8 * 2);
    }
}
