//! The on-disk store: dataset directories under one root, published
//! atomically.
//!
//! Ingest writes every chunk and the manifest into a `.tmp-*` sibling
//! directory, fsyncs each file, then renames the directory into place
//! and fsyncs the root. Readers ([`Store::datasets`], [`Store::load`])
//! only ever see fully-published datasets — a `SIGKILL` anywhere inside
//! an ingest leaves a temp directory that is ignored (and swept by the
//! next successful ingest of any dataset).

use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dataflow::columnar::{ChunkStats, ColumnChunk, ColumnarBuf};
use dataflow::pool::ThreadPool;

use crate::chunk::{chunk_crc, decode_chunk, encode_chunk, ChunkError};
use crate::csv::{self, CsvError};
use crate::manifest::{ChunkMeta, ColumnMeta, Manifest, MANIFEST_FILE, MANIFEST_FORMAT_VERSION};

/// Test hook: sleep this many milliseconds after writing each chunk
/// file, so a crash-safety test can land a `SIGKILL` mid-ingest.
const INGEST_DELAY_ENV: &str = "UPA_STORE_INGEST_DELAY_MS";

/// Store operation failures.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O failure; payload is `(context, error)`.
    Io(String, std::io::Error),
    /// A dataset, manifest or chunk failed validation; the store
    /// refuses to serve it.
    Corrupt(String),
    /// The named dataset is not in the store.
    NotFound(String),
    /// Ingest target already exists and `overwrite` was not set.
    Exists(String),
    /// A dataset name the filesystem layout cannot host.
    BadName(String),
    /// The ingested data had no usable numeric columns.
    NoNumericColumns,
    /// Ingest input columns disagree on row count.
    RaggedColumns,
    /// CSV parsing failed during [`Store::ingest_csv`].
    Csv(CsvError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(what, e) => write!(f, "{what}: {e}"),
            StoreError::Corrupt(why) => write!(f, "store corrupt: {why}"),
            StoreError::NotFound(name) => write!(f, "dataset '{name}' is not in the store"),
            StoreError::Exists(name) => {
                write!(
                    f,
                    "dataset '{name}' already exists (pass overwrite to replace)"
                )
            }
            StoreError::BadName(name) => write!(f, "'{name}' is not a valid dataset name"),
            StoreError::NoNumericColumns => write!(f, "input has no numeric columns"),
            StoreError::RaggedColumns => write!(f, "input columns differ in length"),
            StoreError::Csv(e) => write!(f, "csv: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CsvError> for StoreError {
    fn from(e: CsvError) -> Self {
        StoreError::Csv(e)
    }
}

fn io_ctx(what: impl Into<String>) -> impl FnOnce(std::io::Error) -> StoreError {
    let what = what.into();
    move |e| StoreError::Io(what, e)
}

/// Knobs for one ingest.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Values per chunk file (default 65 536 — 512 KiB of payload).
    pub chunk_rows: usize,
    /// Replace an existing dataset of the same name.
    pub overwrite: bool,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            chunk_rows: 65_536,
            overwrite: false,
        }
    }
}

/// What one successful ingest wrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestReport {
    /// Dataset name as published.
    pub dataset: String,
    /// Rows per column.
    pub rows: u64,
    /// Column names kept (numeric ones, in input order).
    pub columns: Vec<String>,
    /// Chunk files written across all columns.
    pub chunks: usize,
    /// Bytes written (chunks plus manifest).
    pub bytes: u64,
}

/// A dataset pulled fully into memory, kept in its on-disk chunk
/// layout: each column is a [`ColumnarBuf`] of `Arc`-shared chunk
/// buffers (plus manifest statistics), so the serving stack can scan
/// columnar without ever re-materialising a flat `Vec<f64>`.
#[derive(Debug, Clone)]
pub struct LoadedDataset {
    /// Dataset name.
    pub name: String,
    /// Rows per column.
    pub rows: usize,
    /// Columns in manifest order; chunk buffers are shared so a catalog
    /// and a server can hold the same data without copying.
    pub columns: Vec<(String, ColumnarBuf)>,
    /// Bytes of resident values.
    pub resident_bytes: usize,
}

impl LoadedDataset {
    /// The columns as a name→buffer map (still shared).
    #[must_use]
    pub fn column_map(&self) -> HashMap<String, ColumnarBuf> {
        self.columns
            .iter()
            .map(|(n, v)| (n.clone(), v.clone()))
            .collect()
    }
}

/// A dataset store rooted at one directory.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Opens (creating if absent) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Root creation failures.
    pub fn open(root: impl Into<PathBuf>) -> Result<Store, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root)
            .map_err(io_ctx(format!("creating store root {}", root.display())))?;
        Ok(Store { root })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn dataset_dir(&self, name: &str) -> Result<PathBuf, StoreError> {
        validate_name(name)?;
        Ok(self.root.join(name))
    }

    /// Names of every published dataset, sorted. Temp directories and
    /// directories without a readable manifest are invisible.
    ///
    /// # Errors
    ///
    /// Root listing failures.
    pub fn datasets(&self) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        let entries = fs::read_dir(&self.root).map_err(io_ctx(format!(
            "listing store root {}",
            self.root.display()
        )))?;
        for entry in entries {
            let entry = entry.map_err(io_ctx("listing store root"))?;
            let Ok(name) = entry.file_name().into_string() else {
                continue;
            };
            if validate_name(&name).is_err() {
                continue; // .tmp-* and anything else unpublishable
            }
            if !entry.path().join(MANIFEST_FILE).is_file() {
                continue;
            }
            names.push(name);
        }
        names.sort_unstable();
        Ok(names)
    }

    /// Reads and validates one dataset's manifest.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] when absent, [`StoreError::Corrupt`]
    /// when present but invalid.
    pub fn manifest(&self, name: &str) -> Result<Manifest, StoreError> {
        let path = self.dataset_dir(name)?.join(MANIFEST_FILE);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::NotFound(name.to_string()))
            }
            Err(e) => return Err(StoreError::Io(format!("reading {}", path.display()), e)),
        };
        let manifest = Manifest::from_json(&text)
            .map_err(|e| StoreError::Corrupt(format!("dataset '{name}': {e}")))?;
        if manifest.dataset != name {
            return Err(StoreError::Corrupt(format!(
                "dataset '{name}': manifest names '{}'",
                manifest.dataset
            )));
        }
        Ok(manifest)
    }

    /// Ingests in-memory columns as a new dataset, crash-safely.
    ///
    /// All columns must share one length; at least one column is
    /// required. The dataset is invisible until the final rename.
    ///
    /// # Errors
    ///
    /// Validation failures ([`StoreError::Exists`],
    /// [`StoreError::RaggedColumns`], …) or I/O failures; on error the
    /// store is unchanged (a leftover temp directory at worst).
    pub fn ingest(
        &self,
        name: &str,
        columns: &[(String, Vec<f64>)],
        options: &IngestOptions,
    ) -> Result<IngestReport, StoreError> {
        let final_dir = self.dataset_dir(name)?;
        if columns.is_empty() {
            return Err(StoreError::NoNumericColumns);
        }
        let rows = columns[0].1.len();
        if columns.iter().any(|(_, v)| v.len() != rows) {
            return Err(StoreError::RaggedColumns);
        }
        if final_dir.exists() && !options.overwrite {
            return Err(StoreError::Exists(name.to_string()));
        }
        let chunk_rows = options.chunk_rows.max(1);
        let delay = std::env::var(INGEST_DELAY_ENV)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(std::time::Duration::from_millis);

        self.sweep_stale_temps();
        let tmp_dir = self
            .root
            .join(format!(".tmp-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&tmp_dir);
        fs::create_dir_all(&tmp_dir).map_err(io_ctx(format!("creating {}", tmp_dir.display())))?;

        // Write chunks; fsync each before the manifest references it.
        let mut manifest_columns = Vec::with_capacity(columns.len());
        let mut chunk_count = 0usize;
        let mut bytes = 0u64;
        for (col_idx, (col_name, values)) in columns.iter().enumerate() {
            let mut chunks = Vec::new();
            for (chunk_idx, window) in values.chunks(chunk_rows).enumerate() {
                let file = format!("c{col_idx}-{chunk_idx}.bin");
                let encoded = encode_chunk(window);
                write_fsynced(&tmp_dir.join(&file), &encoded)?;
                bytes += encoded.len() as u64;
                chunk_count += 1;
                chunks.push(ChunkMeta {
                    file,
                    rows: window.len() as u64,
                    crc: chunk_crc(window),
                    stats: Some(ChunkStats::compute(window)),
                });
                if let Some(d) = delay {
                    std::thread::sleep(d);
                }
            }
            if chunks.is_empty() {
                // A zero-row dataset still needs one (empty) chunk per
                // column so load has something to verify.
                let file = format!("c{col_idx}-0.bin");
                let encoded = encode_chunk(&[]);
                write_fsynced(&tmp_dir.join(&file), &encoded)?;
                bytes += encoded.len() as u64;
                chunk_count += 1;
                chunks.push(ChunkMeta {
                    file,
                    rows: 0,
                    crc: chunk_crc(&[]),
                    stats: Some(ChunkStats::compute(&[])),
                });
            }
            manifest_columns.push(ColumnMeta {
                name: col_name.clone(),
                chunks,
            });
        }
        let manifest = Manifest {
            format_version: MANIFEST_FORMAT_VERSION,
            dataset: name.to_string(),
            rows: rows as u64,
            columns: manifest_columns,
        };
        let manifest_text = manifest.to_json();
        write_fsynced(&tmp_dir.join(MANIFEST_FILE), manifest_text.as_bytes())?;
        bytes += manifest_text.len() as u64;

        // Publish: replace any previous version, one atomic rename, then
        // pin the directory entry itself.
        if options.overwrite && final_dir.exists() {
            fs::remove_dir_all(&final_dir)
                .map_err(io_ctx(format!("replacing {}", final_dir.display())))?;
        }
        fs::rename(&tmp_dir, &final_dir).map_err(io_ctx(format!(
            "publishing {} -> {}",
            tmp_dir.display(),
            final_dir.display()
        )))?;
        fsync_dir(&self.root)?;

        Ok(IngestReport {
            dataset: name.to_string(),
            rows: rows as u64,
            columns: columns.iter().map(|(n, _)| n.clone()).collect(),
            chunks: chunk_count,
            bytes,
        })
    }

    /// Parses CSV text and ingests every fully-numeric column.
    ///
    /// Columns with any non-numeric cell are skipped (names and labels
    /// ride along in real exports); if none remain the ingest fails
    /// with [`StoreError::NoNumericColumns`].
    ///
    /// # Errors
    ///
    /// CSV structure errors or any [`Store::ingest`] failure.
    pub fn ingest_csv(
        &self,
        name: &str,
        text: &str,
        options: &IngestOptions,
    ) -> Result<IngestReport, StoreError> {
        let doc = csv::parse(text)?;
        let mut columns = Vec::new();
        for col_name in &doc.header {
            if let Ok(values) = doc.numeric_column(col_name) {
                columns.push((col_name.clone(), values));
            }
        }
        if columns.is_empty() {
            return Err(StoreError::NoNumericColumns);
        }
        self.ingest(name, &columns, options)
    }

    /// Loads a dataset fully into memory, decoding chunks in parallel
    /// on `pool` when one is given.
    ///
    /// Every chunk's checksum is verified against both its own trailer
    /// and the manifest's recorded value.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`], [`StoreError::Corrupt`] or I/O
    /// failures.
    pub fn load(&self, name: &str, pool: Option<&ThreadPool>) -> Result<LoadedDataset, StoreError> {
        let manifest = self.manifest(name)?;
        let dir = self.dataset_dir(name)?;

        // One job per chunk, tagged with its column index so columns
        // reassemble in order afterwards.
        let mut jobs: Vec<(usize, PathBuf, ChunkMeta)> = Vec::new();
        for (col_idx, col) in manifest.columns.iter().enumerate() {
            for chunk in &col.chunks {
                jobs.push((col_idx, dir.join(&chunk.file), chunk.clone()));
            }
        }
        let decoded: Vec<Result<(usize, ColumnChunk), StoreError>> = match pool {
            Some(pool) if jobs.len() > 1 => {
                pool.map_ordered(jobs, Arc::new(|_, job| load_chunk_job(job)))
            }
            _ => jobs.into_iter().map(load_chunk_job).collect(),
        };

        // Jobs were pushed column-major and map_ordered preserves input
        // order, so chunks land back in manifest order per column.
        let mut columns: Vec<(String, Vec<ColumnChunk>)> = manifest
            .columns
            .iter()
            .map(|c| (c.name.clone(), Vec::new()))
            .collect();
        for outcome in decoded {
            let (col_idx, chunk) = outcome?;
            columns[col_idx].1.push(chunk);
        }
        let rows = usize::try_from(manifest.rows)
            .map_err(|_| StoreError::Corrupt(format!("dataset '{name}': rows overflow")))?;
        let columns: Vec<(String, ColumnarBuf)> = columns
            .into_iter()
            .map(|(n, chunks)| (n, ColumnarBuf::new(chunks)))
            .collect();
        for (col_name, buf) in &columns {
            if buf.len() != rows {
                return Err(StoreError::Corrupt(format!(
                    "dataset '{name}', column '{col_name}': loaded {} rows, manifest says {rows}",
                    buf.len()
                )));
            }
        }
        let resident_bytes = rows * 8 * columns.len();
        Ok(LoadedDataset {
            name: name.to_string(),
            rows,
            columns,
            resident_bytes,
        })
    }

    /// Removes leftover `.tmp-*` directories from ingests that died
    /// before publishing. Only sweeps temps owned by dead processes is
    /// impossible to know portably, so this runs at the start of an
    /// ingest where a concurrent ingest into the same store is already
    /// undefined.
    fn sweep_stale_temps(&self) {
        if let Ok(entries) = fs::read_dir(&self.root) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                if name.to_string_lossy().starts_with(".tmp-") {
                    let _ = fs::remove_dir_all(entry.path());
                }
            }
        }
    }
}

fn load_chunk_job(job: (usize, PathBuf, ChunkMeta)) -> Result<(usize, ColumnChunk), StoreError> {
    let (col_idx, path, meta) = job;
    let mut bytes = Vec::new();
    File::open(&path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(io_ctx(format!("reading chunk {}", path.display())))?;
    let values = decode_chunk(&bytes)
        .map_err(|e: ChunkError| StoreError::Corrupt(format!("chunk {}: {e}", path.display())))?;
    if values.len() as u64 != meta.rows {
        return Err(StoreError::Corrupt(format!(
            "chunk {}: holds {} rows, manifest says {}",
            path.display(),
            values.len(),
            meta.rows
        )));
    }
    let trailer = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    if trailer != meta.crc {
        return Err(StoreError::Corrupt(format!(
            "chunk {}: checksum {:#010x} does not match manifest {:#010x}",
            path.display(),
            trailer,
            meta.crc
        )));
    }
    // v1 manifests carry no stats; the chunk stays unprunable rather
    // than paying a rescan here.
    Ok((
        col_idx,
        ColumnChunk {
            values: Arc::from(values),
            stats: meta.stats,
        },
    ))
}

fn write_fsynced(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let mut file = File::create(path).map_err(io_ctx(format!("creating {}", path.display())))?;
    file.write_all(bytes)
        .and_then(|()| file.sync_all())
        .map_err(io_ctx(format!("writing {}", path.display())))
}

/// Fsyncs a directory so a just-renamed entry survives power loss. Not
/// every platform supports opening a directory for sync; failures there
/// degrade durability, not atomicity, so they are ignored.
fn fsync_dir(dir: &Path) -> Result<(), StoreError> {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
    Ok(())
}

fn validate_name(name: &str) -> Result<(), StoreError> {
    let ok = !name.is_empty()
        && name.len() <= 128
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'));
    if ok {
        Ok(())
    } else {
        Err(StoreError::BadName(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("upa_store_tests")
            .join(format!("{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_columns() -> Vec<(String, Vec<f64>)> {
        vec![
            ("age".into(), vec![41.0, 17.0, 29.0, 55.0, 30.0]),
            ("hours".into(), vec![40.0, 12.0, 38.0, 45.0, 40.0]),
        ]
    }

    #[test]
    fn ingest_then_load_round_trips() {
        let root = temp_root("round_trip");
        let store = Store::open(&root).unwrap();
        let report = store
            .ingest("adult", &sample_columns(), &IngestOptions::default())
            .unwrap();
        assert_eq!(report.rows, 5);
        assert_eq!(report.columns, vec!["age", "hours"]);
        assert_eq!(store.datasets().unwrap(), vec!["adult"]);

        let loaded = store.load("adult", None).unwrap();
        assert_eq!(loaded.rows, 5);
        assert_eq!(loaded.resident_bytes, 5 * 8 * 2);
        assert_eq!(loaded.columns[0].0, "age");
        assert_eq!(
            loaded.columns[0].1.to_vec(),
            vec![41.0, 17.0, 29.0, 55.0, 30.0]
        );
        let stats = loaded.columns[0].1.total_stats().unwrap();
        assert_eq!((stats.min, stats.max), (17.0, 55.0));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn multi_chunk_datasets_reassemble_in_order() {
        let root = temp_root("multi_chunk");
        let store = Store::open(&root).unwrap();
        let values: Vec<f64> = (0..1000).map(f64::from).collect();
        let columns = vec![("v".to_string(), values.clone())];
        let options = IngestOptions {
            chunk_rows: 64,
            overwrite: false,
        };
        let report = store.ingest("big", &columns, &options).unwrap();
        assert_eq!(report.chunks, 16); // ceil(1000 / 64)

        let pool = ThreadPool::new(4);
        let loaded = store.load("big", Some(&pool)).unwrap();
        assert_eq!(loaded.columns[0].1.to_vec(), values);
        assert_eq!(loaded.columns[0].1.num_chunks(), 16);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn refuses_overwrite_unless_asked() {
        let root = temp_root("overwrite");
        let store = Store::open(&root).unwrap();
        let options = IngestOptions::default();
        store.ingest("d", &sample_columns(), &options).unwrap();
        assert!(matches!(
            store.ingest("d", &sample_columns(), &options),
            Err(StoreError::Exists(_))
        ));
        let replace = IngestOptions {
            overwrite: true,
            ..IngestOptions::default()
        };
        let smaller = vec![("x".to_string(), vec![1.0])];
        store.ingest("d", &smaller, &replace).unwrap();
        assert_eq!(store.load("d", None).unwrap().rows, 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_ingest_is_invisible() {
        let root = temp_root("torn");
        let store = Store::open(&root).unwrap();
        // Simulate a crash mid-ingest: a temp directory with real
        // content but no published rename.
        let tmp = root.join(".tmp-victim-12345");
        fs::create_dir_all(&tmp).unwrap();
        fs::write(tmp.join("c0-0.bin"), encode_chunk(&[1.0, 2.0])).unwrap();
        assert!(store.datasets().unwrap().is_empty());
        assert!(matches!(
            store.load("victim", None),
            Err(StoreError::NotFound(_))
        ));
        // The next ingest sweeps the debris.
        store
            .ingest("ok", &sample_columns(), &IngestOptions::default())
            .unwrap();
        assert!(!tmp.exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_chunk_refuses_to_load() {
        let root = temp_root("corrupt");
        let store = Store::open(&root).unwrap();
        store
            .ingest("d", &sample_columns(), &IngestOptions::default())
            .unwrap();
        let chunk = root.join("d").join("c0-0.bin");
        let mut bytes = fs::read(&chunk).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&chunk, &bytes).unwrap();
        assert!(matches!(store.load("d", None), Err(StoreError::Corrupt(_))));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn chunk_swapped_between_columns_is_caught() {
        let root = temp_root("swap");
        let store = Store::open(&root).unwrap();
        store
            .ingest("d", &sample_columns(), &IngestOptions::default())
            .unwrap();
        // Both chunks are self-consistent; the manifest crc binding is
        // the only thing that notices the swap.
        let a = root.join("d").join("c0-0.bin");
        let b = root.join("d").join("c1-0.bin");
        let bytes_a = fs::read(&a).unwrap();
        let bytes_b = fs::read(&b).unwrap();
        fs::write(&a, &bytes_b).unwrap();
        fs::write(&b, &bytes_a).unwrap();
        assert!(matches!(store.load("d", None), Err(StoreError::Corrupt(_))));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn rejects_hostile_names_and_ragged_input() {
        let root = temp_root("names");
        let store = Store::open(&root).unwrap();
        let options = IngestOptions::default();
        for bad in ["", "..", "a/b", ".hidden", "x\\y"] {
            assert!(matches!(
                store.ingest(bad, &sample_columns(), &options),
                Err(StoreError::BadName(_))
            ));
        }
        let ragged = vec![
            ("a".to_string(), vec![1.0, 2.0]),
            ("b".to_string(), vec![1.0]),
        ];
        assert!(matches!(
            store.ingest("d", &ragged, &options),
            Err(StoreError::RaggedColumns)
        ));
        assert!(matches!(
            store.ingest("d", &[], &options),
            Err(StoreError::NoNumericColumns)
        ));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn ingest_csv_keeps_numeric_columns_only() {
        let root = temp_root("csv");
        let store = Store::open(&root).unwrap();
        let text = "age,name,hours\n41,alice,40\n17,bob,12\n";
        let report = store
            .ingest_csv("people", text, &IngestOptions::default())
            .unwrap();
        assert_eq!(report.columns, vec!["age", "hours"]);
        let loaded = store.load("people", None).unwrap();
        assert_eq!(loaded.rows, 2);
        assert!(matches!(
            store.ingest_csv("words", "a,b\nx,y\n", &IngestOptions::default()),
            Err(StoreError::NoNumericColumns)
        ));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn zero_row_dataset_round_trips() {
        let root = temp_root("zero");
        let store = Store::open(&root).unwrap();
        let columns = vec![("v".to_string(), Vec::new())];
        store
            .ingest("empty", &columns, &IngestOptions::default())
            .unwrap();
        let loaded = store.load("empty", None).unwrap();
        assert_eq!(loaded.rows, 0);
        assert_eq!(loaded.columns.len(), 1);
        let _ = fs::remove_dir_all(&root);
    }
}
