//! The fixed-width binary column chunk format.
//!
//! ```text
//! offset  size        field
//! 0       4           magic "UPAC"
//! 4       4           format version, u32 LE
//! 8       8           value count N, u64 LE
//! 16      8 × N       values, f64 bit patterns, LE
//! 16+8N   4           FNV-1a 32 over bytes [0, 16+8N), u32 LE
//! ```
//!
//! Values are raw bit patterns, so NaN payloads and ±inf round-trip
//! exactly. The checksum covers the header too: a chunk truncated or
//! grafted onto the wrong length is rejected before any value is
//! trusted.

use crate::fnv::fnv1a32;

/// Current chunk format version, written into every chunk header and
/// the dataset manifest.
pub const CHUNK_FORMAT_VERSION: u32 = 1;

const MAGIC: [u8; 4] = *b"UPAC";
const HEADER_LEN: usize = 16;
const TRAILER_LEN: usize = 4;

/// Chunk decoding failures. Every variant means the bytes must not be
/// trusted as data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkError {
    /// Shorter than a header plus trailer.
    Truncated,
    /// The first four bytes were not `UPAC`.
    BadMagic,
    /// A format version this build does not read.
    BadVersion(u32),
    /// Header count disagrees with the byte length; payload is
    /// `(expected_bytes, actual_bytes)`.
    LengthMismatch(usize, usize),
    /// Stored and recomputed FNV-1a differ; payload is
    /// `(stored, computed)`.
    ChecksumMismatch(u32, u32),
}

impl std::fmt::Display for ChunkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChunkError::Truncated => write!(f, "chunk shorter than its header"),
            ChunkError::BadMagic => write!(f, "chunk magic is not UPAC"),
            ChunkError::BadVersion(v) => write!(f, "unsupported chunk format version {v}"),
            ChunkError::LengthMismatch(want, got) => {
                write!(
                    f,
                    "chunk length mismatch: header implies {want} bytes, file has {got}"
                )
            }
            ChunkError::ChecksumMismatch(stored, computed) => write!(
                f,
                "chunk checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for ChunkError {}

/// Serialises one column chunk; the returned bytes are exactly what
/// [`decode_chunk`] accepts.
#[must_use]
pub fn encode_chunk(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + values.len() * 8 + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&CHUNK_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(values.len() as u64).to_le_bytes());
    for v in values {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    let crc = fnv1a32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// The checksum a chunk's trailer will carry, without materialising the
/// encoded bytes twice — manifests record it so a chunk file swapped
/// between columns is caught even though the file itself is
/// self-consistent.
#[must_use]
pub fn chunk_crc(values: &[f64]) -> u32 {
    let mut h = crate::fnv::Fnv32::new();
    h.eat(&MAGIC);
    h.eat(&CHUNK_FORMAT_VERSION.to_le_bytes());
    h.eat(&(values.len() as u64).to_le_bytes());
    for v in values {
        h.eat(&v.to_bits().to_le_bytes());
    }
    h.finish()
}

/// Deserialises one column chunk, verifying structure and checksum.
///
/// # Errors
///
/// Any [`ChunkError`]: the bytes are not a well-formed, intact chunk.
pub fn decode_chunk(bytes: &[u8]) -> Result<Vec<f64>, ChunkError> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(ChunkError::Truncated);
    }
    if bytes[0..4] != MAGIC {
        return Err(ChunkError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != CHUNK_FORMAT_VERSION {
        return Err(ChunkError::BadVersion(version));
    }
    let count = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let Ok(count) = usize::try_from(count) else {
        return Err(ChunkError::LengthMismatch(usize::MAX, bytes.len()));
    };
    let expected = HEADER_LEN
        .checked_add(count.saturating_mul(8))
        .and_then(|n| n.checked_add(TRAILER_LEN))
        .unwrap_or(usize::MAX);
    if expected != bytes.len() {
        return Err(ChunkError::LengthMismatch(expected, bytes.len()));
    }
    let body = &bytes[..bytes.len() - TRAILER_LEN];
    let stored = u32::from_le_bytes(bytes[bytes.len() - TRAILER_LEN..].try_into().unwrap());
    let computed = fnv1a32(body);
    if stored != computed {
        return Err(ChunkError::ChecksumMismatch(stored, computed));
    }
    let mut values = Vec::with_capacity(count);
    for i in 0..count {
        let at = HEADER_LEN + i * 8;
        let bits = u64::from_le_bytes(body[at..at + 8].try_into().unwrap());
        values.push(f64::from_bits(bits));
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_plain_values() {
        let values = vec![0.0, -1.5, 1e300, f64::MIN_POSITIVE];
        let bytes = encode_chunk(&values);
        assert_eq!(decode_chunk(&bytes).unwrap(), values);
    }

    #[test]
    fn round_trips_empty() {
        assert_eq!(decode_chunk(&encode_chunk(&[])).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn preserves_nan_bit_patterns_and_infinities() {
        let quiet = f64::NAN;
        let payload = f64::from_bits(0x7ff8_0000_dead_beef);
        let values = vec![quiet, payload, f64::INFINITY, f64::NEG_INFINITY, -0.0];
        let bytes = encode_chunk(&values);
        let back = decode_chunk(&bytes).unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back), bits(&values));
    }

    #[test]
    fn crc_helper_matches_trailer() {
        let values = vec![3.0, f64::NAN, -7.25];
        let bytes = encode_chunk(&values);
        let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        assert_eq!(chunk_crc(&values), stored);
    }

    #[test]
    fn rejects_flipped_byte_anywhere() {
        let bytes = encode_chunk(&[1.0, 2.0, 3.0]);
        for i in 0..bytes.len() {
            let mut evil = bytes.clone();
            evil[i] ^= 0x40;
            assert!(
                decode_chunk(&evil).is_err(),
                "flipping byte {i} must not decode"
            );
        }
    }

    #[test]
    fn rejects_truncation_and_extension() {
        let bytes = encode_chunk(&[1.0, 2.0]);
        assert!(decode_chunk(&bytes[..bytes.len() - 1]).is_err());
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(decode_chunk(&longer).is_err());
        assert_eq!(decode_chunk(&bytes[..3]), Err(ChunkError::Truncated));
    }

    #[test]
    fn rejects_wrong_magic_and_version() {
        let mut bytes = encode_chunk(&[1.0]);
        bytes[0] = b'X';
        assert_eq!(decode_chunk(&bytes), Err(ChunkError::BadMagic));
        let mut bytes = encode_chunk(&[1.0]);
        bytes[4] = 9;
        // Version is checked before the checksum: a future-format chunk
        // reports "unsupported version", not "corrupt".
        assert_eq!(decode_chunk(&bytes), Err(ChunkError::BadVersion(9)));
    }
}
