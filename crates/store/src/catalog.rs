//! The live catalog: which datasets are resident, and the machinery to
//! attach, detach and reload them while other datasets keep serving.
//!
//! The catalog's lock discipline is the whole point: chunk loading (the
//! slow part — disk reads, checksum verification, decoding) happens
//! *outside* the lock, on the catalog's own `dataflow` pool. The write
//! lock is held only to swap an `Arc` in or out of the resident map, so
//! a multi-gigabyte attach never stalls an in-flight lookup — let alone
//! a release — on another dataset. Readers clone the `Arc` out and drop
//! the lock; a dataset detached mid-query stays alive until the last
//! holder lets go.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, RwLock};

use dataflow::columnar::ColumnarBuf;
use dataflow::pool::ThreadPool;

use crate::store::{LoadedDataset, Store, StoreError};

/// One resident (attached) dataset. Immutable once published; reload
/// swaps in a fresh `Resident` rather than mutating this one.
///
/// Columns stay in their on-disk chunk layout ([`ColumnarBuf`]): the
/// catalog hands out shared chunk buffers, never a re-materialised
/// `Vec<f64>`, so an attach is the last copy the data ever sees.
#[derive(Debug)]
pub struct Resident {
    /// Dataset name.
    pub name: String,
    /// Rows per column.
    pub rows: usize,
    /// Columns in manifest order, chunk buffers shared.
    pub columns: Vec<(String, ColumnarBuf)>,
    /// Bytes of resident values.
    pub resident_bytes: usize,
}

impl Resident {
    /// Looks up one column's chunk buffer by name.
    #[must_use]
    pub fn column(&self, name: &str) -> Option<&ColumnarBuf> {
        self.columns.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Column names in manifest order.
    #[must_use]
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|(n, _)| n.clone()).collect()
    }
}

impl From<LoadedDataset> for Resident {
    fn from(loaded: LoadedDataset) -> Self {
        Resident {
            name: loaded.name,
            rows: loaded.rows,
            columns: loaded.columns,
            resident_bytes: loaded.resident_bytes,
        }
    }
}

/// A store directory plus the set of datasets currently resident.
pub struct Catalog {
    store: Store,
    pool: ThreadPool,
    resident: RwLock<HashMap<String, Arc<Resident>>>,
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog")
            .field("root", &self.store.root())
            .field("attached", &self.attached())
            .finish()
    }
}

impl Catalog {
    /// Opens (creating if absent) the store at `root` with a loader
    /// pool of `threads` workers.
    ///
    /// # Errors
    ///
    /// Store root creation failures.
    pub fn open(root: impl Into<PathBuf>, threads: usize) -> Result<Catalog, StoreError> {
        Ok(Catalog {
            store: Store::open(root)?,
            pool: ThreadPool::new(threads.max(1)),
            resident: RwLock::new(HashMap::new()),
        })
    }

    /// The underlying store.
    #[must_use]
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Attaches (or, if already attached, reloads) a dataset. Returns
    /// the resident dataset and whether this replaced a previous
    /// residency.
    ///
    /// Loading happens before the write lock is taken; the lock is held
    /// only for the map insert. Two concurrent attaches of the same
    /// dataset both succeed — last write wins, both returned `Arc`s
    /// stay valid.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from loading; on error the previous residency
    /// (if any) is untouched.
    pub fn attach(&self, name: &str) -> Result<(Arc<Resident>, bool), StoreError> {
        let loaded = self.store.load(name, Some(&self.pool))?;
        let resident = Arc::new(Resident::from(loaded));
        let previous = self
            .resident
            .write()
            .expect("catalog lock poisoned")
            .insert(name.to_string(), Arc::clone(&resident));
        Ok((resident, previous.is_some()))
    }

    /// Detaches a dataset. In-flight holders of the `Arc` finish
    /// normally; new lookups miss.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] when the dataset is not attached.
    pub fn detach(&self, name: &str) -> Result<Arc<Resident>, StoreError> {
        self.resident
            .write()
            .expect("catalog lock poisoned")
            .remove(name)
            .ok_or_else(|| StoreError::NotFound(name.to_string()))
    }

    /// The resident dataset, if attached.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<Resident>> {
        self.resident
            .read()
            .expect("catalog lock poisoned")
            .get(name)
            .cloned()
    }

    /// Whether `name` is currently resident.
    #[must_use]
    pub fn is_attached(&self, name: &str) -> bool {
        self.resident
            .read()
            .expect("catalog lock poisoned")
            .contains_key(name)
    }

    /// Names of attached datasets, sorted.
    #[must_use]
    pub fn attached(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .resident
            .read()
            .expect("catalog lock poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort_unstable();
        names
    }

    /// Names of datasets published on disk, sorted (attached or not).
    ///
    /// # Errors
    ///
    /// Store listing failures.
    pub fn available(&self) -> Result<Vec<String>, StoreError> {
        self.store.datasets()
    }

    /// Number of attached datasets.
    #[must_use]
    pub fn attached_count(&self) -> usize {
        self.resident.read().expect("catalog lock poisoned").len()
    }

    /// Total bytes resident across attached datasets.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.resident
            .read()
            .expect("catalog lock poisoned")
            .values()
            .map(|r| r.resident_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::IngestOptions;
    use std::path::PathBuf;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("upa_catalog_tests")
            .join(format!("{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn seeded(root: &PathBuf) -> Catalog {
        let catalog = Catalog::open(root, 2).unwrap();
        let columns = vec![("v".to_string(), vec![1.0, 2.0, 3.0])];
        catalog
            .store()
            .ingest("d1", &columns, &IngestOptions::default())
            .unwrap();
        catalog
            .store()
            .ingest("d2", &columns, &IngestOptions::default())
            .unwrap();
        catalog
    }

    #[test]
    fn attach_detach_lifecycle() {
        let root = temp_root("lifecycle");
        let catalog = seeded(&root);
        assert_eq!(catalog.available().unwrap(), vec!["d1", "d2"]);
        assert!(catalog.attached().is_empty());

        let (resident, reloaded) = catalog.attach("d1").unwrap();
        assert!(!reloaded);
        assert_eq!(resident.rows, 3);
        assert_eq!(catalog.attached(), vec!["d1"]);
        assert_eq!(catalog.resident_bytes(), 3 * 8);

        // Reload reports the replacement; a pre-reload Arc stays valid.
        let before = catalog.get("d1").unwrap();
        let (_, reloaded) = catalog.attach("d1").unwrap();
        assert!(reloaded);
        assert_eq!(before.rows, 3);

        catalog.detach("d1").unwrap();
        assert!(catalog.get("d1").is_none());
        assert!(matches!(catalog.detach("d1"), Err(StoreError::NotFound(_))));
        assert_eq!(catalog.resident_bytes(), 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn attach_unknown_dataset_fails_cleanly() {
        let root = temp_root("unknown");
        let catalog = seeded(&root);
        assert!(matches!(
            catalog.attach("nope"),
            Err(StoreError::NotFound(_))
        ));
        assert!(catalog.attached().is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn reload_picks_up_new_data() {
        let root = temp_root("reload");
        let catalog = seeded(&root);
        catalog.attach("d1").unwrap();
        let grown = vec![("v".to_string(), vec![1.0, 2.0, 3.0, 4.0])];
        catalog
            .store()
            .ingest(
                "d1",
                &grown,
                &IngestOptions {
                    overwrite: true,
                    ..Default::default()
                },
            )
            .unwrap();
        let (resident, reloaded) = catalog.attach("d1").unwrap();
        assert!(reloaded);
        assert_eq!(resident.rows, 4);
        assert_eq!(catalog.get("d1").unwrap().rows, 4);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn concurrent_attaches_and_lookups() {
        let root = temp_root("concurrent");
        let catalog = Arc::new(seeded(&root));
        let mut workers = Vec::new();
        for i in 0..8 {
            let catalog = Arc::clone(&catalog);
            workers.push(std::thread::spawn(move || {
                let name = if i % 2 == 0 { "d1" } else { "d2" };
                for _ in 0..20 {
                    catalog.attach(name).unwrap();
                    if let Some(r) = catalog.get(name) {
                        assert_eq!(r.rows, 3);
                    }
                    let _ = catalog.detach(name);
                }
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
