//! `upa-store`: a persistent columnar dataset store with a live catalog.
//!
//! The serving daemon historically answered queries only over datasets
//! baked in at startup — synthetic columns or a one-shot CSV slurp.
//! This crate is the durable second half: datasets live on disk as
//! checksummed, fixed-width binary column chunks under a JSON manifest,
//! and an in-memory [`Catalog`] attaches, detaches and reloads them
//! without restarting the process that serves them.
//!
//! # On-disk layout
//!
//! ```text
//! <root>/
//!   <dataset>/
//!     manifest.json        schema, row count, chunk list, format version
//!     c0-0.bin             column 0, chunk 0 (f64 LE + FNV-1a trailer)
//!     c0-1.bin             column 0, chunk 1
//!     c1-0.bin             column 1, chunk 0
//!   .tmp-<dataset>-<pid>/  an in-flight (or torn) ingest — never visible
//! ```
//!
//! Ingest is crash-safe the same way the server's budget ledger is
//! durable: everything is written into a temporary directory, fsync'd,
//! and published with one atomic `rename`. A process killed mid-ingest
//! leaves a `.tmp-*` directory that every reader ignores; the dataset
//! simply does not exist.
//!
//! The crate is std-only (plus the workspace's own `dataflow` pool for
//! parallel chunk loads) — no serde, no memmap, no external crates.

mod catalog;
mod chunk;
pub mod csv;
mod fnv;
mod json;
mod manifest;
mod store;

pub use catalog::{Catalog, Resident};
pub use chunk::{chunk_crc, decode_chunk, encode_chunk, ChunkError, CHUNK_FORMAT_VERSION};
pub use manifest::{ChunkMeta, ColumnMeta, Manifest, MANIFEST_FILE};
pub use store::{IngestOptions, IngestReport, LoadedDataset, Store, StoreError};
