//! A minimal, dependency-free CSV reader (RFC 4180 subset).
//!
//! Supports comma separation, `"`-quoted fields with embedded commas,
//! doubled-quote escapes and both `\n` and `\r\n` line endings. This
//! lives in the store crate (it is the ingest parser) and is
//! re-exported by `upa-cli` for its own column extraction.

/// A parsed CSV document: header plus records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvDocument {
    /// Column names from the first row.
    pub header: Vec<String>,
    /// Data rows (each the same arity as the header).
    pub rows: Vec<Vec<String>>,
}

/// CSV parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input had no header row.
    Empty,
    /// A row's field count differed from the header's; payload is the
    /// 1-based line number.
    ArityMismatch(usize),
    /// A quoted field was never closed.
    UnterminatedQuote,
    /// The requested column does not exist; payload is the column name.
    UnknownColumn(String),
    /// A cell could not be parsed as a number. Carries the 1-based file
    /// line, the column name and the raw cell text, so the user can go
    /// straight to the offending value.
    NotNumeric {
        /// 1-based line number in the file (header is line 1).
        line: usize,
        /// Column the cell sits in.
        column: String,
        /// The raw, unparsed cell text.
        cell: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Empty => write!(f, "input has no header row"),
            CsvError::ArityMismatch(line) => {
                write!(f, "line {line}: field count differs from header")
            }
            CsvError::UnterminatedQuote => write!(f, "unterminated quoted field"),
            CsvError::UnknownColumn(c) => write!(f, "no column named '{c}'"),
            CsvError::NotNumeric { line, column, cell } => {
                write!(
                    f,
                    "line {line}, column '{column}': '{cell}' is not a number"
                )
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// Splits one logical CSV line (no newline handling — the caller feeds
/// whole records).
fn parse_record(line: &str) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    loop {
        match chars.next() {
            None => {
                if in_quotes {
                    return Err(CsvError::UnterminatedQuote);
                }
                fields.push(std::mem::take(&mut field));
                return Ok(fields);
            }
            Some('"') if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            Some('"') if field.is_empty() && !in_quotes => in_quotes = true,
            Some(',') if !in_quotes => fields.push(std::mem::take(&mut field)),
            Some(c) => field.push(c),
        }
    }
}

/// Parses a CSV document with a header row.
///
/// # Errors
///
/// Returns a [`CsvError`] for an empty input, ragged rows or unclosed
/// quotes. Blank lines are skipped.
pub fn parse(text: &str) -> Result<CsvDocument, CsvError> {
    let mut lines = text
        .lines()
        .map(|l| l.strip_suffix('\r').unwrap_or(l))
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header_line) = lines.next().ok_or(CsvError::Empty)?;
    let header = parse_record(header_line)?;
    let mut rows = Vec::new();
    for (i, line) in lines {
        let row = parse_record(line)?;
        if row.len() != header.len() {
            return Err(CsvError::ArityMismatch(i + 1));
        }
        rows.push(row);
    }
    Ok(CsvDocument { header, rows })
}

impl CsvDocument {
    /// Extracts a column as `f64` values.
    ///
    /// # Errors
    ///
    /// Returns [`CsvError::UnknownColumn`] or [`CsvError::NotNumeric`]
    /// (which names the line, column and raw cell).
    pub fn numeric_column(&self, name: &str) -> Result<Vec<f64>, CsvError> {
        let idx = self
            .header
            .iter()
            .position(|h| h == name)
            .ok_or_else(|| CsvError::UnknownColumn(name.to_string()))?;
        self.rows
            .iter()
            .enumerate()
            .map(|(i, row)| {
                row[idx]
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| CsvError::NotNumeric {
                        line: i + 2,
                        column: name.to_string(),
                        cell: row[idx].clone(),
                    })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_document() {
        let doc = parse("a,b\n1,2\n3,4\n").unwrap();
        assert_eq!(doc.header, vec!["a", "b"]);
        assert_eq!(doc.rows, vec![vec!["1", "2"], vec!["3", "4"]]);
    }

    #[test]
    fn handles_quotes_and_escapes() {
        let doc = parse("name,note\nalice,\"hello, world\"\nbob,\"say \"\"hi\"\"\"\n").unwrap();
        assert_eq!(doc.rows[0][1], "hello, world");
        assert_eq!(doc.rows[1][1], "say \"hi\"");
    }

    #[test]
    fn handles_crlf_and_blank_lines() {
        let doc = parse("a,b\r\n1,2\r\n\r\n3,4\r\n").unwrap();
        assert_eq!(doc.rows.len(), 2);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(parse(""), Err(CsvError::Empty));
        assert!(matches!(parse("a,b\n1\n"), Err(CsvError::ArityMismatch(_))));
        assert_eq!(parse("a\n\"oops\n"), Err(CsvError::UnterminatedQuote));
    }

    #[test]
    fn numeric_column_extraction() {
        let doc = parse("age,name\n41,alice\n17,bob\n").unwrap();
        assert_eq!(doc.numeric_column("age").unwrap(), vec![41.0, 17.0]);
        assert!(matches!(
            doc.numeric_column("name"),
            Err(CsvError::NotNumeric { line: 2, .. })
        ));
        assert!(matches!(
            doc.numeric_column("zz"),
            Err(CsvError::UnknownColumn(_))
        ));
    }

    #[test]
    fn empty_field_is_empty_string() {
        let doc = parse("a,b\n,2\n");
        assert_eq!(doc.unwrap().rows[0][0], "");
    }
}
