//! FNV-1a, 32-bit — the same checksum style the server's budget ledger
//! uses per record, applied here to column chunks and their manifest
//! bindings.

/// Incrementally updatable FNV-1a hasher.
pub(crate) struct Fnv32(u32);

impl Fnv32 {
    pub(crate) fn new() -> Self {
        Fnv32(0x811c_9dc5)
    }

    pub(crate) fn eat(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u32::from(*b);
            self.0 = self.0.wrapping_mul(0x0100_0193);
        }
    }

    pub(crate) fn finish(&self) -> u32 {
        self.0
    }
}

/// One-shot convenience over [`Fnv32`].
pub(crate) fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h = Fnv32::new();
    h.eat(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 32-bit test vectors.
        assert_eq!(fnv1a32(b""), 0x811c_9dc5);
        assert_eq!(fnv1a32(b"a"), 0xe40c_292c);
        assert_eq!(fnv1a32(b"foobar"), 0xbf9c_f968);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv32::new();
        h.eat(b"foo");
        h.eat(b"bar");
        assert_eq!(h.finish(), fnv1a32(b"foobar"));
    }
}
