//! Property tests for the chunk codec: any `f64` payload — including
//! NaNs with arbitrary payload bits and ±inf — survives encode→decode
//! bit-exactly, and any single-byte corruption or truncation is
//! rejected.

use proptest::prelude::*;
use upa_store::{decode_chunk, encode_chunk, ChunkError};

/// Bit patterns that exercise the edges of the f64 space: quiet and
/// payload-carrying NaNs, a signalling NaN, infinities, signed zero and
/// the smallest subnormal. Prepended to every generated payload so the
/// properties always cover them.
const SPECIALS: [u64; 8] = [
    0x7ff8_0000_0000_0000, // quiet NaN
    0x7ff8_0000_dead_beef, // NaN with payload
    0x7ff0_0000_0000_0001, // signalling NaN
    0x7ff0_0000_0000_0000, // +inf
    0xfff0_0000_0000_0000, // -inf
    0x8000_0000_0000_0000, // -0.0
    0x0000_0000_0000_0001, // smallest subnormal
    0xffff_ffff_ffff_ffff, // all-ones NaN
];

/// Uniform u64 bit patterns reinterpreted as f64, with the specials in
/// front.
fn payload(bits: &[u64]) -> Vec<f64> {
    SPECIALS
        .iter()
        .chain(bits.iter())
        .map(|b| f64::from_bits(*b))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode→decode is the identity on bit patterns — NaN payloads and
    /// infinities included.
    #[test]
    fn round_trips_bit_exactly(bits in prop::collection::vec(0u64..=u64::MAX, 0..200)) {
        let values = payload(&bits);
        let bytes = encode_chunk(&values);
        let back = decode_chunk(&bytes).expect("intact chunk decodes");
        prop_assert_eq!(back.len(), values.len());
        for (a, b) in back.iter().zip(values.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Flipping any bits of any single byte — header, payload or
    /// trailer — makes the chunk undecodable.
    #[test]
    fn any_corrupted_byte_is_rejected(
        bits in prop::collection::vec(0u64..=u64::MAX, 1..64),
        at in 0u64..=u64::MAX,
        flip in 1u8..=255,
    ) {
        let values = payload(&bits);
        let bytes = encode_chunk(&values);
        let at = (at % bytes.len() as u64) as usize;
        let mut evil = bytes.clone();
        evil[at] ^= flip;
        prop_assert!(
            decode_chunk(&evil).is_err(),
            "byte {} xor {:#04x} must not decode", at, flip
        );
    }

    /// Any strict prefix of a chunk is rejected.
    #[test]
    fn any_truncation_is_rejected(
        bits in prop::collection::vec(0u64..=u64::MAX, 1..64),
        keep in 0u64..=u64::MAX,
    ) {
        let values = payload(&bits);
        let bytes = encode_chunk(&values);
        let keep = (keep % bytes.len() as u64) as usize;
        prop_assert!(decode_chunk(&bytes[..keep]).is_err());
    }

    /// Corruption confined to the trailer is reported specifically as a
    /// checksum mismatch (the structure is fine, the binding is not).
    #[test]
    fn checksum_trailer_flip_reports_mismatch(
        bits in prop::collection::vec(0u64..=u64::MAX, 1..32),
        flip in 1u8..=255,
    ) {
        let values = payload(&bits);
        let mut bytes = encode_chunk(&values);
        let last = bytes.len() - 1;
        bytes[last] ^= flip;
        prop_assert!(matches!(
            decode_chunk(&bytes),
            Err(ChunkError::ChecksumMismatch(_, _))
        ));
    }
}
