//! `upa-cli` — differentially private aggregates over CSV files.
//!
//! ```text
//! upa-cli --input people.csv --column age --query mean --epsilon 0.5
//! ```
//!
//! Loads one numeric column of a headered CSV, runs the requested
//! aggregate through the full UPA pipeline (sampling, union-preserving
//! reduce, RANGE ENFORCER, Laplace release) and prints the noisy value
//! with its diagnostics. See [`Args`] for the flags.

pub mod csv;
pub mod remote;
pub mod sql;
pub mod store_cmd;

use dataflow::Context;
use upa_core::domain::EmpiricalSampler;
use upa_core::query::MapReduceQuery;
use upa_core::{QueryAudit, Upa, UpaConfig, UpaResult};

/// The aggregate to release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Number of rows.
    Count,
    /// Sum of the column.
    Sum,
    /// Mean of the column.
    Mean,
}

impl std::str::FromStr for QueryKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "count" => Ok(QueryKind::Count),
            "sum" => Ok(QueryKind::Sum),
            "mean" => Ok(QueryKind::Mean),
            other => Err(format!("unknown query '{other}' (count|sum|mean)")),
        }
    }
}

/// Parsed command-line arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// CSV path.
    pub input: String,
    /// Column to aggregate.
    pub column: String,
    /// Aggregate kind.
    pub query: QueryKind,
    /// Privacy budget ε.
    pub epsilon: f64,
    /// UPA sample size `n`.
    pub sample_size: usize,
    /// RNG seed.
    pub seed: u64,
    /// Engine threads (0 = auto).
    pub threads: usize,
    /// Single-table SQL statement to release instead of
    /// `--column`/`--query` (e.g. `SELECT COUNT(*) FROM data WHERE age >= 18`).
    pub sql: Option<String>,
    /// Print the per-query audit (stage timings, enforcer decisions,
    /// engine counters) after the release, `EXPLAIN ANALYZE`-style.
    pub stats: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            input: String::new(),
            column: String::new(),
            query: QueryKind::Count,
            epsilon: 0.1,
            sample_size: 1000,
            seed: 0xC11,
            threads: 0,
            sql: None,
            stats: false,
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
usage: upa-cli --input FILE.csv --column NAME --query count|sum|mean
               [--epsilon E] [--sample-size N] [--seed S] [--threads T]
               [--stats]
       upa-cli --input FILE.csv --sql 'SELECT COUNT(*) FROM data WHERE ...'
               [--epsilon E] [--sample-size N] [--seed S] [--threads T]
               [--stats]

Releases a differentially private aggregate of a CSV file — either one
numeric column, or a single-table SQL COUNT/SUM (the CSV is the table
`data`) — with sensitivity inferred automatically by UPA (DSN 2020).
--stats additionally prints the query audit: per-stage wall-clock of
Algorithm 1, RANGE ENFORCER decisions and engine shuffle counters.";

impl Args {
    /// Parses flags from an iterator of arguments (without the program
    /// name).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown or malformed flags.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
        let mut args = Args::default();
        let mut it = argv.into_iter();
        let need = |it: &mut dyn Iterator<Item = String>, flag: &str| {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--input" => args.input = need(&mut it, "--input")?,
                "--column" => args.column = need(&mut it, "--column")?,
                "--query" => args.query = need(&mut it, "--query")?.parse()?,
                "--epsilon" => {
                    args.epsilon = need(&mut it, "--epsilon")?
                        .parse()
                        .map_err(|_| "--epsilon must be a number".to_string())?
                }
                "--sample-size" => {
                    args.sample_size = need(&mut it, "--sample-size")?
                        .parse()
                        .map_err(|_| "--sample-size must be an integer".to_string())?
                }
                "--seed" => {
                    args.seed = need(&mut it, "--seed")?
                        .parse()
                        .map_err(|_| "--seed must be an integer".to_string())?
                }
                "--threads" => {
                    args.threads = need(&mut it, "--threads")?
                        .parse()
                        .map_err(|_| "--threads must be an integer".to_string())?
                }
                "--sql" => args.sql = Some(need(&mut it, "--sql")?),
                "--stats" => args.stats = true,
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
            }
        }
        if args.input.is_empty() {
            return Err(format!("--input is required\n{USAGE}"));
        }
        if args.sql.is_none() && args.column.is_empty() && args.query != QueryKind::Count {
            return Err(format!("--column is required for sum/mean\n{USAGE}"));
        }
        Ok(args)
    }
}

/// Builds the Map/Reduce query for an aggregate kind.
fn build_query(kind: QueryKind) -> MapReduceQuery<f64, (f64, f64), f64> {
    let name = match kind {
        QueryKind::Count => "count",
        QueryKind::Sum => "sum",
        QueryKind::Mean => "mean",
    };
    MapReduceQuery::new(
        name,
        move |x: &f64| match kind {
            QueryKind::Count => (1.0, 1.0),
            QueryKind::Sum | QueryKind::Mean => (*x, 1.0),
        },
        |a: &(f64, f64), b: &(f64, f64)| (a.0 + b.0, a.1 + b.1),
        move |acc: Option<&(f64, f64)>| match (kind, acc) {
            (_, None) => 0.0,
            (QueryKind::Mean, Some((s, n))) => {
                if *n > 0.0 {
                    s / n
                } else {
                    0.0
                }
            }
            (_, Some((s, _))) => *s,
        },
    )
    .with_half_key(|x: &f64| x.to_bits())
}

/// Runs the aggregate over already-extracted values, returning the
/// release together with its [`QueryAudit`].
///
/// # Errors
///
/// Propagates pipeline errors as strings (empty input etc.).
pub fn run_values_audited(
    values: Vec<f64>,
    args: &Args,
) -> Result<(UpaResult<f64>, Option<QueryAudit>), String> {
    let ctx = if args.threads == 0 {
        Context::default()
    } else {
        Context::with_threads(args.threads)
    };
    let mut upa = Upa::new(
        ctx.clone(),
        UpaConfig {
            epsilon: args.epsilon,
            sample_size: args.sample_size,
            seed: args.seed,
            ..UpaConfig::default()
        },
    );
    let dataset = ctx.parallelize_default(values.clone());
    let domain = EmpiricalSampler::new(values);
    let query = build_query(args.query);
    let result = upa
        .run(&dataset, &query, &domain)
        .map_err(|e| e.to_string())?;
    let audit = upa.last_audit().cloned();
    Ok((result, audit))
}

/// Runs the aggregate over already-extracted values.
///
/// # Errors
///
/// Propagates pipeline errors as strings (empty input etc.).
pub fn run_values(values: Vec<f64>, args: &Args) -> Result<UpaResult<f64>, String> {
    Ok(run_values_audited(values, args)?.0)
}

/// Full CLI flow: read the file, extract the column, release.
///
/// # Errors
///
/// Returns a printable message for I/O, CSV or pipeline failures.
pub fn run(args: &Args) -> Result<UpaResult<f64>, String> {
    let text = std::fs::read_to_string(&args.input)
        .map_err(|e| format!("cannot read {}: {e}", args.input))?;
    let doc = csv::parse(&text).map_err(|e| e.to_string())?;
    if let Some(statement) = &args.sql {
        // Grouped statements are rendered by the binary through
        // `run_release`; the library-level `run` keeps the scalar shape.
        let (result, _exact) = sql::run_sql(&doc, statement, args)?;
        return Ok(result);
    }
    let values = if args.query == QueryKind::Count && args.column.is_empty() {
        vec![0.0; doc.rows.len()]
    } else {
        doc.numeric_column(&args.column)
            .map_err(|e| e.to_string())?
    };
    run_values(values, args)
}

/// Runs the full flow, supporting grouped SQL output. The returned
/// [`Release`] carries the audit of the underlying pipeline run, printed
/// by the binary when `--stats` is set.
///
/// # Errors
///
/// Returns a printable message for I/O, CSV, SQL or pipeline failures.
pub fn run_release(args: &Args) -> Result<Release, String> {
    let text = std::fs::read_to_string(&args.input)
        .map_err(|e| format!("cannot read {}: {e}", args.input))?;
    let doc = csv::parse(&text).map_err(|e| e.to_string())?;
    if let Some(statement) = &args.sql {
        let (release, audit) = sql::run_sql_release(&doc, statement, args)?;
        let output = match release {
            sql::SqlRelease::Scalar(result, _exact) => Output::Scalar(*result),
            sql::SqlRelease::Grouped { labels, result } => Output::Grouped {
                labels,
                result: *result,
            },
        };
        return Ok(Release { output, audit });
    }
    let values = if args.query == QueryKind::Count && args.column.is_empty() {
        vec![0.0; doc.rows.len()]
    } else {
        doc.numeric_column(&args.column)
            .map_err(|e| e.to_string())?
    };
    let (result, audit) = run_values_audited(values, args)?;
    Ok(Release {
        output: Output::Scalar(result),
        audit,
    })
}

/// A rendered-ready release: scalar or grouped.
#[derive(Debug, Clone)]
pub enum Output {
    /// One noisy value.
    Scalar(UpaResult<f64>),
    /// One noisy value per group.
    Grouped {
        /// Group labels, positionally matching the result components.
        labels: Vec<String>,
        /// The per-group release.
        result: UpaResult<Vec<f64>>,
    },
}

/// The full CLI release: the printable output plus the pipeline audit.
#[derive(Debug, Clone)]
pub struct Release {
    /// The value(s) to print.
    pub output: Output,
    /// The audit of the pipeline run that produced them.
    pub audit: Option<QueryAudit>,
}

/// Formats any release for the terminal.
pub fn render_output(output: &Output, args: &Args) -> String {
    match output {
        Output::Scalar(result) => render(result, args),
        Output::Grouped { labels, result } => {
            let mut out = format!("released per group (ε={}):\n", args.epsilon);
            for (i, label) in labels.iter().enumerate() {
                out.push_str(&format!(
                    "  {label:<20} {:>14.3}   (exact {:.0}, noise scale {:.3})\n",
                    result.released[i],
                    result.raw[i],
                    result.sensitivity[i] / args.epsilon,
                ));
            }
            out.push_str(&format!("  sampled records    : {}", result.sample_size));
            out
        }
    }
}

/// Formats a result for the terminal.
pub fn render(result: &UpaResult<f64>, args: &Args) -> String {
    format!(
        "released (ε={}): {:.6}\n  exact value        : {:.6}\n  inferred sensitivity: {:.6}\n  enforced range     : [{:.6}, {:.6}]\n  noise scale        : {:.6}\n  sampled records    : {}",
        args.epsilon,
        result.released,
        result.raw,
        result.max_sensitivity(),
        result.range.bounds[0].0,
        result.range.bounds[0].1,
        result.max_sensitivity() / args.epsilon,
        result.sample_size,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_full_flag_set() {
        let a = Args::parse(argv(
            "--input f.csv --column age --query mean --epsilon 0.5 --sample-size 64 --seed 9 --threads 2",
        ))
        .unwrap();
        assert_eq!(a.input, "f.csv");
        assert_eq!(a.column, "age");
        assert_eq!(a.query, QueryKind::Mean);
        assert_eq!(a.epsilon, 0.5);
        assert_eq!(a.sample_size, 64);
        assert_eq!(a.seed, 9);
        assert_eq!(a.threads, 2);
        assert!(!a.stats);
        let b = Args::parse(argv("--input f.csv --stats")).unwrap();
        assert!(b.stats);
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(Args::parse(argv("--nope")).is_err());
        assert!(Args::parse(argv("--input")).is_err());
        assert!(Args::parse(argv("--input f.csv --query fancy")).is_err());
        assert!(Args::parse(argv("--query sum")).is_err(), "input required");
        assert!(
            Args::parse(argv("--input f.csv --query sum")).is_err(),
            "column required for sum"
        );
    }

    #[test]
    fn count_sum_mean_agree_with_direct_computation() {
        let values: Vec<f64> = (0..3_000).map(|i| (i % 50) as f64).collect();
        let base = Args {
            input: "unused".into(),
            column: "x".into(),
            sample_size: 64,
            epsilon: 1.0,
            ..Args::default()
        };
        for (kind, want) in [
            (QueryKind::Count, 3_000.0),
            (QueryKind::Sum, values.iter().sum::<f64>()),
            (QueryKind::Mean, values.iter().sum::<f64>() / 3_000.0),
        ] {
            let args = Args {
                query: kind,
                ..base.clone()
            };
            let r = run_values(values.clone(), &args).unwrap();
            assert!(
                (r.raw - want).abs() < 1e-6 * want.abs().max(1.0),
                "{kind:?}: raw {} vs want {want}",
                r.raw
            );
        }
    }

    #[test]
    fn end_to_end_over_a_csv_file() {
        let dir = std::env::temp_dir().join("upa_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ages.csv");
        let mut text = String::from("age,name\n");
        for i in 0..2_000 {
            text.push_str(&format!("{},person{}\n", i % 90, i));
        }
        std::fs::write(&path, text).unwrap();
        let args = Args {
            input: path.to_string_lossy().into_owned(),
            column: "age".into(),
            query: QueryKind::Mean,
            epsilon: 1.0,
            sample_size: 100,
            ..Args::default()
        };
        let r = run(&args).unwrap();
        let true_mean = (0..2_000).map(|i| (i % 90) as f64).sum::<f64>() / 2_000.0;
        assert!((r.raw - true_mean).abs() < 1e-9);
        let text = render(&r, &args);
        assert!(text.contains("released"));
        assert!(text.contains("sensitivity"));
        // The full release path carries the audit for --stats.
        let release = run_release(&args).unwrap();
        let audit = release.audit.expect("release has an audit");
        assert_eq!(audit.query, "mean");
        assert!(audit.stage_nanos("sample") > 0);
        assert!(audit.render().contains("stages:"));
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let args = Args {
            input: "/definitely/not/here.csv".into(),
            column: "x".into(),
            ..Args::default()
        };
        assert!(run(&args).unwrap_err().contains("cannot read"));
    }
}
