//! The `upa-cli` binary; all logic lives in the library for testability.
//!
//! Three modes:
//!
//! * default — release an aggregate over a local CSV file;
//! * `serve` — run an `upa-server` daemon over CSV files and/or a
//!   persistent columnar store;
//! * `query` — release an aggregate from a running daemon;
//! * `metrics` — scrape (or `--watch`) a running daemon's metrics;
//! * `ingest` — publish a CSV into a persistent columnar store;
//! * `datasets` — list a store directory's or a daemon's datasets.

use upa_core::QueryAudit;

/// The one `--stats` renderer: local and remote audits both come
/// through here, so the output is identical regardless of where the
/// query ran.
fn print_stats(audit: Option<&QueryAudit>) {
    match audit {
        Some(audit) => println!("\n{}", audit.render()),
        None => eprintln!("(no audit recorded for this release)"),
    }
}

fn fail(msg: &str, code: i32) -> ! {
    eprintln!("{msg}");
    std::process::exit(code);
}

fn main() {
    let mut argv = std::env::args().skip(1).peekable();
    match argv.peek().map(String::as_str) {
        Some("serve") => {
            let args =
                upa_cli::remote::ServeArgs::parse(argv.skip(1)).unwrap_or_else(|msg| fail(&msg, 2));
            if let Err(msg) = upa_cli::remote::run_serve(&args) {
                fail(&format!("error: {msg}"), 1);
            }
        }
        Some("query") => {
            let args =
                upa_cli::remote::QueryArgs::parse(argv.skip(1)).unwrap_or_else(|msg| fail(&msg, 2));
            match upa_cli::remote::run_remote_query(&args) {
                Ok(release) => {
                    println!("{}", upa_cli::remote::render_remote(&release));
                    if args.stats {
                        print_stats(release.reply.audit.as_ref());
                    }
                }
                Err(msg) => fail(&format!("error: {msg}"), 1),
            }
        }
        Some("ingest") => {
            let args = upa_cli::store_cmd::IngestArgs::parse(argv.skip(1))
                .unwrap_or_else(|msg| fail(&msg, 2));
            match upa_cli::store_cmd::run_ingest(&args) {
                Ok(report) => println!("{report}"),
                Err(msg) => fail(&format!("error: {msg}"), 1),
            }
        }
        Some("datasets") => {
            let args = upa_cli::store_cmd::DatasetsArgs::parse(argv.skip(1))
                .unwrap_or_else(|msg| fail(&msg, 2));
            match upa_cli::store_cmd::run_datasets(&args) {
                Ok(listing) => println!("{listing}"),
                Err(msg) => fail(&format!("error: {msg}"), 1),
            }
        }
        Some("metrics") => {
            let args = upa_cli::remote::MetricsArgs::parse(argv.skip(1))
                .unwrap_or_else(|msg| fail(&msg, 2));
            if let Err(msg) = upa_cli::remote::run_metrics(&args) {
                fail(&format!("error: {msg}"), 1);
            }
        }
        _ => {
            let args = upa_cli::Args::parse(argv).unwrap_or_else(|msg| fail(&msg, 2));
            match upa_cli::run_release(&args) {
                Ok(release) => {
                    println!("{}", upa_cli::render_output(&release.output, &args));
                    if args.stats {
                        print_stats(release.audit.as_ref());
                    }
                }
                Err(msg) => fail(&format!("error: {msg}"), 1),
            }
        }
    }
}
