//! The `upa-cli` binary; all logic lives in the library for testability.

fn main() {
    let args = match upa_cli::Args::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    match upa_cli::run_release(&args) {
        Ok(output) => println!("{}", upa_cli::render_output(&output, &args)),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
