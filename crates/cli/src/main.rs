//! The `upa-cli` binary; all logic lives in the library for testability.

fn main() {
    let args = match upa_cli::Args::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    match upa_cli::run_release(&args) {
        Ok(release) => {
            println!("{}", upa_cli::render_output(&release.output, &args));
            if args.stats {
                match &release.audit {
                    Some(audit) => println!("\n{}", audit.render()),
                    None => eprintln!("(no audit recorded for this release)"),
                }
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
