//! The `ingest` and `datasets` subcommands: publish CSV files into a
//! persistent columnar store, and list what a store (or a running
//! server) holds.
//!
//! ```text
//! upa-cli ingest people.csv --store ./store
//! upa-cli datasets --store ./store
//! upa-cli datasets --addr 127.0.0.1:7878
//! ```
//!
//! `ingest` writes through [`upa_store::Store::ingest_csv`]: fixed-width
//! checksummed column chunks published by one atomic rename, so a
//! crash mid-ingest leaves no visible dataset. `datasets` reads either
//! the on-disk manifests directly (`--store`) or a live server's
//! catalog view (`--addr`), which also distinguishes *served* from
//! merely *available* datasets.

use std::path::{Path, PathBuf};
use upa_server::Client;
use upa_store::{IngestOptions, Store};

/// Usage text for `upa-cli ingest`.
pub const INGEST_USAGE: &str = "\
usage: upa-cli ingest FILE.csv --store DIR [--name NAME]
                      [--chunk-rows N] [--overwrite]

Publishes a CSV file into the persistent columnar store at DIR as a
dataset named NAME (default: the file's stem). Every fully numeric
column is kept; other columns are skipped. The dataset becomes visible
atomically — a crash mid-ingest leaves nothing behind. --chunk-rows
sizes the column chunks (default 65536 rows); --overwrite replaces an
existing dataset of the same name.";

/// Usage text for `upa-cli datasets`.
pub const DATASETS_USAGE: &str = "\
usage: upa-cli datasets (--store DIR | --addr HOST:PORT)

Lists datasets. With --store, reads the manifests in the store directory
directly. With --addr, asks a running daemon for its catalog view:
datasets currently served (with row counts and resident bytes) and
datasets published in its store but not attached.";

/// Parsed `ingest` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestArgs {
    /// CSV file to publish.
    pub input: String,
    /// Store directory.
    pub store: PathBuf,
    /// Dataset name (default: the input's file stem).
    pub name: Option<String>,
    /// Rows per column chunk.
    pub chunk_rows: usize,
    /// Replace an existing dataset of the same name.
    pub overwrite: bool,
}

impl Default for IngestArgs {
    fn default() -> Self {
        IngestArgs {
            input: String::new(),
            store: PathBuf::new(),
            name: None,
            chunk_rows: IngestOptions::default().chunk_rows,
            overwrite: false,
        }
    }
}

impl IngestArgs {
    /// Parses `ingest` flags (the input file may appear positionally).
    ///
    /// # Errors
    ///
    /// A printable message for unknown or malformed flags.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<IngestArgs, String> {
        let mut args = IngestArgs::default();
        let mut it = argv.into_iter();
        let need = |it: &mut dyn Iterator<Item = String>, flag: &str| {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--input" => args.input = need(&mut it, "--input")?,
                "--store" => args.store = PathBuf::from(need(&mut it, "--store")?),
                "--name" => args.name = Some(need(&mut it, "--name")?),
                "--chunk-rows" => {
                    args.chunk_rows = need(&mut it, "--chunk-rows")?
                        .parse()
                        .map_err(|_| "--chunk-rows must be an integer".to_string())?
                }
                "--overwrite" => args.overwrite = true,
                "--help" | "-h" => return Err(INGEST_USAGE.to_string()),
                other if !other.starts_with('-') && args.input.is_empty() => {
                    args.input = other.to_string()
                }
                other => return Err(format!("unknown flag '{other}'\n{INGEST_USAGE}")),
            }
        }
        if args.input.is_empty() {
            return Err(format!("an input CSV file is required\n{INGEST_USAGE}"));
        }
        if args.store.as_os_str().is_empty() {
            return Err(format!("--store is required\n{INGEST_USAGE}"));
        }
        Ok(args)
    }
}

/// The `ingest` subcommand: parse the CSV, write chunks, publish
/// atomically. Returns the printable report.
///
/// # Errors
///
/// I/O, CSV, or store failures as printable messages.
pub fn run_ingest(args: &IngestArgs) -> Result<String, String> {
    let name = match &args.name {
        Some(name) => name.clone(),
        None => Path::new(&args.input)
            .file_stem()
            .and_then(|s| s.to_str())
            .map(str::to_string)
            .ok_or_else(|| format!("cannot derive a dataset name from '{}'", args.input))?,
    };
    let text = std::fs::read_to_string(&args.input)
        .map_err(|e| format!("cannot read {}: {e}", args.input))?;
    let store = Store::open(&args.store).map_err(|e| e.to_string())?;
    let report = store
        .ingest_csv(
            &name,
            &text,
            &IngestOptions {
                chunk_rows: args.chunk_rows,
                overwrite: args.overwrite,
            },
        )
        .map_err(|e| e.to_string())?;
    Ok(format!(
        "ingested '{}' into {}\n  rows    : {}\n  columns : {}\n  chunks  : {}\n  bytes   : {}",
        report.dataset,
        args.store.display(),
        report.rows,
        report.columns.join(", "),
        report.chunks,
        report.bytes,
    ))
}

/// Parsed `datasets` arguments.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DatasetsArgs {
    /// Local store directory to list.
    pub store: Option<PathBuf>,
    /// Running daemon to ask instead.
    pub addr: Option<String>,
}

impl DatasetsArgs {
    /// Parses `datasets` flags.
    ///
    /// # Errors
    ///
    /// A printable message for unknown or malformed flags.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<DatasetsArgs, String> {
        let mut args = DatasetsArgs::default();
        let mut it = argv.into_iter();
        let need = |it: &mut dyn Iterator<Item = String>, flag: &str| {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--store" => args.store = Some(PathBuf::from(need(&mut it, "--store")?)),
                "--addr" => args.addr = Some(need(&mut it, "--addr")?),
                "--help" | "-h" => return Err(DATASETS_USAGE.to_string()),
                other => return Err(format!("unknown flag '{other}'\n{DATASETS_USAGE}")),
            }
        }
        if args.store.is_none() == args.addr.is_none() {
            return Err(format!(
                "exactly one of --store or --addr is required\n{DATASETS_USAGE}"
            ));
        }
        Ok(args)
    }
}

/// Lists a local store directory's datasets from their manifests.
///
/// # Errors
///
/// Store-open or manifest failures as printable messages.
pub fn list_store(store_dir: &Path) -> Result<String, String> {
    let store = Store::open(store_dir).map_err(|e| e.to_string())?;
    let names = store.datasets().map_err(|e| e.to_string())?;
    if names.is_empty() {
        return Ok(format!("no datasets in {}", store_dir.display()));
    }
    let mut out = format!("datasets in {}:\n", store_dir.display());
    for name in names {
        let manifest = store.manifest(&name).map_err(|e| e.to_string())?;
        out.push_str(&format!("  {name:<20} {:>10} rows\n", manifest.rows));
        for col in &manifest.columns {
            // v1 manifests carry no ingest-time stats; the range is
            // honestly unknown rather than silently zero.
            let range = match col.stats() {
                Some(s) if s.count > s.nan_count => {
                    let nan = if s.nan_count > 0 {
                        format!("   ({} NaN)", s.nan_count)
                    } else {
                        String::new()
                    };
                    format!("range {} .. {}{nan}", s.min, s.max)
                }
                Some(_) => "range (no finite values)".to_string(),
                None => "range ?".to_string(),
            };
            let chunks = col.chunks.len();
            let plural = if chunks == 1 { "chunk " } else { "chunks" };
            out.push_str(&format!(
                "      {:<16} {chunks:>6} {plural}   {range}\n",
                col.name,
            ));
        }
    }
    Ok(out.trim_end().to_string())
}

/// Lists a running daemon's catalog view: served and available datasets.
///
/// # Errors
///
/// Connection or protocol failures as printable messages.
pub fn list_remote(addr: &str) -> Result<String, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let reply = client.datasets_info().map_err(|e| e.to_string())?;
    let mut out = String::new();
    if reply.info.is_empty() {
        out.push_str("no datasets served\n");
    } else {
        out.push_str("served:\n");
        for info in &reply.info {
            out.push_str(&format!(
                "  {:<20} {:>10} rows   {:>12} bytes   columns: {}\n",
                info.name,
                info.rows,
                info.resident_bytes,
                info.columns.join(", "),
            ));
        }
    }
    if !reply.available.is_empty() {
        out.push_str(&format!(
            "available to attach: {}\n",
            reply.available.join(", ")
        ));
    }
    Ok(out.trim_end().to_string())
}

/// The `datasets` subcommand.
///
/// # Errors
///
/// Store or connection failures as printable messages.
pub fn run_datasets(args: &DatasetsArgs) -> Result<String, String> {
    match (&args.store, &args.addr) {
        (Some(dir), None) => list_store(dir),
        (None, Some(addr)) => list_remote(addr),
        _ => Err(DATASETS_USAGE.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("upa_store_cmd_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn parses_ingest_flags() {
        let a = IngestArgs::parse(argv(
            "people.csv --store ./s --name folks --chunk-rows 1024 --overwrite",
        ))
        .unwrap();
        assert_eq!(a.input, "people.csv");
        assert_eq!(a.store, PathBuf::from("./s"));
        assert_eq!(a.name.as_deref(), Some("folks"));
        assert_eq!(a.chunk_rows, 1024);
        assert!(a.overwrite);
        // --input also works, and both store and input are required.
        let b = IngestArgs::parse(argv("--input x.csv --store ./s")).unwrap();
        assert_eq!(b.input, "x.csv");
        assert!(IngestArgs::parse(argv("--store ./s")).is_err());
        assert!(IngestArgs::parse(argv("x.csv")).is_err());
    }

    #[test]
    fn parses_datasets_flags() {
        let a = DatasetsArgs::parse(argv("--store ./s")).unwrap();
        assert_eq!(a.store, Some(PathBuf::from("./s")));
        let b = DatasetsArgs::parse(argv("--addr 127.0.0.1:1")).unwrap();
        assert_eq!(b.addr.as_deref(), Some("127.0.0.1:1"));
        assert!(
            DatasetsArgs::parse(argv("")).is_err(),
            "one source required"
        );
        assert!(
            DatasetsArgs::parse(argv("--store ./s --addr x:1")).is_err(),
            "not both"
        );
    }

    #[test]
    fn ingest_then_list_round_trip() {
        let dir = temp_dir("roundtrip");
        let csv = dir.join("people.csv");
        std::fs::write(&csv, "age,name,score\n31,ada,9.5\n44,lin,7.25\n").unwrap();
        let args = IngestArgs {
            input: csv.to_string_lossy().into_owned(),
            store: dir.join("store"),
            ..IngestArgs::default()
        };
        let report = run_ingest(&args).unwrap();
        assert!(report.contains("ingested 'people'"));
        assert!(report.contains("rows    : 2"));
        assert!(
            report.contains("age, score"),
            "name column skipped: {report}"
        );

        let listing = list_store(&dir.join("store")).unwrap();
        assert!(listing.contains("people"));
        assert!(listing.contains("2 rows"));
        // Per-column chunk counts and ingest-time value ranges.
        assert!(listing.contains("age"), "{listing}");
        assert!(listing.contains("score"), "{listing}");
        assert!(listing.contains("1 chunk"), "{listing}");
        assert!(listing.contains("range 31 .. 44"), "{listing}");
        assert!(listing.contains("range 7.25 .. 9.5"), "{listing}");

        // Re-ingesting without --overwrite refuses; with it, replaces.
        assert!(run_ingest(&args).unwrap_err().contains("exists"));
        let again = IngestArgs {
            overwrite: true,
            ..args
        };
        assert!(run_ingest(&again).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_store_lists_cleanly() {
        let dir = temp_dir("empty");
        let listing = list_store(&dir).unwrap();
        assert!(listing.contains("no datasets"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
