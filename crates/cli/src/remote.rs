//! The `serve` and `query` subcommands: run an `upa-server` daemon over
//! CSV files, and query a running daemon.
//!
//! ```text
//! upa-cli serve --input people.csv --budget 1.0 --ledger spends.jsonl
//! upa-cli query --addr 127.0.0.1:7878 --dataset people --query mean --column age --stats
//! ```
//!
//! Remote `--stats` output is produced by reconstructing the server's
//! audit JSON into a [`upa_core::QueryAudit`] and rendering it with the
//! same [`upa_core::QueryAudit::render`] as local runs — the formatting
//! lives in exactly one place.

use crate::csv;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use upa_server::{Client, DatasetSpec, Server, ServerConfig};

/// Usage text for `upa-cli serve`.
pub const SERVE_USAGE: &str = "\
usage: upa-cli serve [--input FILE.csv ...] [--store DIR]
                     [--attach NAME ...] [--allow-admin]
                     [--port P] [--budget E] [--ledger PATH]
                     [--epsilon E] [--sample-size N] [--seed S]
                     [--threads T] [--max-connections N] [--max-inflight N]
                     [--queue-capacity N] [--slow-query-ms MS]
                     [--ledger-commit-us US] [--cache-capacity N]

Serves differentially private aggregates over the given CSV files
and/or a persistent columnar store. Each --input file becomes a dataset
named after its stem (people.csv -> people), with every fully numeric
column queryable. --store DIR opens a columnar dataset store (see
`upa-cli ingest`): --attach serves a stored dataset from startup, and
--allow-admin enables the ingest/attach/detach wire ops so datasets can
be managed while the daemon runs. A --store daemon may start with no
datasets at all. --budget meters each dataset;
--ledger makes spends crash-safe (replayed on restart), and
--ledger-commit-us sizes the group-commit window within which concurrent
spends share one fsync (0 = every spend fsyncs alone). Port 0 picks an
ephemeral port; the bound address is announced on the first stdout line.
--max-inflight sizes the scheduler worker pool; --queue-capacity bounds
each dataset's request queue (a full queue refuses with `busy`);
--cache-capacity bounds the prepared-query LRU cache whose hits skip the
queue entirely (0 = unbounded). --slow-query-ms logs any request slower
than MS at `warn` with its full trace (see `upa-cli metrics` and the
server's `trace` op).";

/// Usage text for `upa-cli query`.
pub const QUERY_USAGE: &str = "\
usage: upa-cli query --addr HOST:PORT --query count|sum|mean
                     [--dataset NAME] [--column NAME] [--epsilon E]
                     [--stats] [--remaining] [--deadline-ms MS]
                     [--connect-timeout-ms MS] [--timeout-ms MS]
                     [--retry-busy N]

Releases one differentially private aggregate from a running
`upa-cli serve` (or upa-serverd) daemon. --stats prints the query audit
exactly as a local run would; --remaining also prints the dataset's
budget after the release. --deadline-ms asks the server to shed the
request (error `deadline`, nothing charged) if it cannot be served in
time; --retry-busy retries `busy` refusals with jittered backoff;
--connect-timeout-ms/--timeout-ms bound the connection and each reply.";

/// Parsed `serve` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// CSV files to serve, one dataset each.
    pub inputs: Vec<String>,
    /// TCP port (0 = ephemeral).
    pub port: u16,
    /// Per-dataset total ε budget.
    pub budget: Option<f64>,
    /// Crash-safe ledger path.
    pub ledger: Option<PathBuf>,
    /// Default per-release ε.
    pub epsilon: f64,
    /// UPA sample size `n`.
    pub sample_size: usize,
    /// RNG seed.
    pub seed: u64,
    /// Engine threads (0 = auto).
    pub threads: usize,
    /// Concurrent connection cap.
    pub max_connections: usize,
    /// Scheduler worker-pool size (max concurrently running
    /// prepares/releases).
    pub max_inflight: usize,
    /// Bounded per-dataset request queue capacity.
    pub queue_capacity: usize,
    /// Slow-query log threshold in milliseconds (`None` disables it).
    pub slow_query_ms: Option<u64>,
    /// Group-commit window in microseconds (0 = commit every spend
    /// alone).
    pub ledger_commit_us: u64,
    /// Prepared-query LRU cache capacity (0 = unbounded).
    pub cache_capacity: usize,
    /// Persistent columnar store directory (enables the catalog).
    pub store: Option<PathBuf>,
    /// Store datasets to attach at startup.
    pub attach: Vec<String>,
    /// Enable the admin wire ops (ingest/attach/detach).
    pub allow_admin: bool,
}

impl Default for ServeArgs {
    fn default() -> Self {
        let defaults = ServerConfig::default();
        ServeArgs {
            inputs: Vec::new(),
            port: 7878,
            budget: None,
            ledger: None,
            epsilon: defaults.epsilon,
            sample_size: defaults.sample_size,
            seed: defaults.seed,
            threads: 0,
            max_connections: defaults.max_connections,
            max_inflight: defaults.max_inflight_prepares,
            queue_capacity: defaults.queue_capacity,
            slow_query_ms: None,
            ledger_commit_us: defaults.ledger_commit_us,
            cache_capacity: defaults.cache_capacity,
            store: None,
            attach: Vec::new(),
            allow_admin: false,
        }
    }
}

impl ServeArgs {
    /// Parses `serve` flags.
    ///
    /// # Errors
    ///
    /// A printable message for unknown or malformed flags.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<ServeArgs, String> {
        let mut args = ServeArgs::default();
        let mut it = argv.into_iter();
        let need = |it: &mut dyn Iterator<Item = String>, flag: &str| {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--input" => args.inputs.push(need(&mut it, "--input")?),
                "--port" => args.port = parse_num(&need(&mut it, "--port")?, "--port")?,
                "--budget" => {
                    args.budget = Some(parse_num(&need(&mut it, "--budget")?, "--budget")?)
                }
                "--ledger" => args.ledger = Some(PathBuf::from(need(&mut it, "--ledger")?)),
                "--epsilon" => args.epsilon = parse_num(&need(&mut it, "--epsilon")?, "--epsilon")?,
                "--sample-size" => {
                    args.sample_size = parse_num(&need(&mut it, "--sample-size")?, "--sample-size")?
                }
                "--seed" => args.seed = parse_num(&need(&mut it, "--seed")?, "--seed")?,
                "--threads" => args.threads = parse_num(&need(&mut it, "--threads")?, "--threads")?,
                "--max-connections" => {
                    args.max_connections =
                        parse_num(&need(&mut it, "--max-connections")?, "--max-connections")?
                }
                "--max-inflight" => {
                    args.max_inflight =
                        parse_num(&need(&mut it, "--max-inflight")?, "--max-inflight")?
                }
                "--queue-capacity" => {
                    args.queue_capacity =
                        parse_num(&need(&mut it, "--queue-capacity")?, "--queue-capacity")?
                }
                "--slow-query-ms" => {
                    args.slow_query_ms = Some(parse_num(
                        &need(&mut it, "--slow-query-ms")?,
                        "--slow-query-ms",
                    )?)
                }
                "--ledger-commit-us" => {
                    args.ledger_commit_us =
                        parse_num(&need(&mut it, "--ledger-commit-us")?, "--ledger-commit-us")?
                }
                "--cache-capacity" => {
                    args.cache_capacity =
                        parse_num(&need(&mut it, "--cache-capacity")?, "--cache-capacity")?
                }
                "--store" => args.store = Some(PathBuf::from(need(&mut it, "--store")?)),
                "--attach" => args.attach.push(need(&mut it, "--attach")?),
                "--allow-admin" => args.allow_admin = true,
                "--help" | "-h" => return Err(SERVE_USAGE.to_string()),
                other => return Err(format!("unknown flag '{other}'\n{SERVE_USAGE}")),
            }
        }
        if !args.attach.is_empty() && args.store.is_none() {
            return Err(format!("--attach requires --store\n{SERVE_USAGE}"));
        }
        // A store-backed daemon may start empty; only a daemon with no
        // possible data source at all is an error.
        if args.inputs.is_empty() && args.store.is_none() {
            return Err(format!(
                "no data source: pass --input and/or --store\n{SERVE_USAGE}"
            ));
        }
        Ok(args)
    }
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag} must be a number, got '{value}'"))
}

/// Parsed `query` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryArgs {
    /// Server address (`host:port`).
    pub addr: String,
    /// Dataset name.
    pub dataset: String,
    /// Aggregate (`count`/`sum`/`mean`).
    pub query: String,
    /// Column (empty for `count`).
    pub column: String,
    /// Per-release ε override.
    pub epsilon: Option<f64>,
    /// Print the query audit.
    pub stats: bool,
    /// Print the dataset's budget after the release.
    pub remaining: bool,
    /// Server-side deadline: shed (not charge) the release if it cannot
    /// be served within this many milliseconds.
    pub deadline_ms: Option<u64>,
    /// TCP connect timeout in milliseconds.
    pub connect_timeout_ms: Option<u64>,
    /// Per-reply read timeout in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Extra attempts when the server refuses with `busy`.
    pub retry_busy: u32,
}

impl Default for QueryArgs {
    fn default() -> Self {
        QueryArgs {
            addr: String::new(),
            dataset: "data".to_string(),
            query: "count".to_string(),
            column: String::new(),
            epsilon: None,
            stats: false,
            remaining: false,
            deadline_ms: None,
            connect_timeout_ms: None,
            timeout_ms: None,
            retry_busy: 0,
        }
    }
}

impl QueryArgs {
    /// Parses `query` flags.
    ///
    /// # Errors
    ///
    /// A printable message for unknown or malformed flags.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<QueryArgs, String> {
        let mut args = QueryArgs::default();
        let mut it = argv.into_iter();
        let need = |it: &mut dyn Iterator<Item = String>, flag: &str| {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--addr" => args.addr = need(&mut it, "--addr")?,
                "--dataset" => args.dataset = need(&mut it, "--dataset")?,
                "--query" => args.query = need(&mut it, "--query")?,
                "--column" => args.column = need(&mut it, "--column")?,
                "--epsilon" => {
                    args.epsilon = Some(parse_num(&need(&mut it, "--epsilon")?, "--epsilon")?)
                }
                "--stats" => args.stats = true,
                "--remaining" => args.remaining = true,
                "--deadline-ms" => {
                    args.deadline_ms = Some(parse_num(
                        &need(&mut it, "--deadline-ms")?,
                        "--deadline-ms",
                    )?)
                }
                "--connect-timeout-ms" => {
                    args.connect_timeout_ms = Some(parse_num(
                        &need(&mut it, "--connect-timeout-ms")?,
                        "--connect-timeout-ms",
                    )?)
                }
                "--timeout-ms" => {
                    args.timeout_ms =
                        Some(parse_num(&need(&mut it, "--timeout-ms")?, "--timeout-ms")?)
                }
                "--retry-busy" => {
                    args.retry_busy = parse_num(&need(&mut it, "--retry-busy")?, "--retry-busy")?
                }
                "--help" | "-h" => return Err(QUERY_USAGE.to_string()),
                other => return Err(format!("unknown flag '{other}'\n{QUERY_USAGE}")),
            }
        }
        if args.addr.is_empty() {
            return Err(format!("--addr is required\n{QUERY_USAGE}"));
        }
        Ok(args)
    }
}

/// Loads a CSV file as a server dataset: the stem names it, and every
/// column whose cells all parse as numbers becomes queryable.
///
/// # Errors
///
/// I/O and CSV-shape failures, or a file with no numeric columns at all.
pub fn load_dataset(path: &str) -> Result<DatasetSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = csv::parse(&text).map_err(|e| e.to_string())?;
    let name = Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string());
    let mut columns = HashMap::new();
    for header in &doc.header {
        if let Ok(values) = doc.numeric_column(header) {
            columns.insert(header.clone(), values);
        }
    }
    if columns.is_empty() && !doc.rows.is_empty() {
        return Err(format!("{path}: no fully numeric column to serve"));
    }
    Ok(DatasetSpec::new(name, doc.rows.len(), columns))
}

/// Builds the server configuration from parsed `serve` arguments.
///
/// # Errors
///
/// Dataset-loading failures.
pub fn build_server_config(args: &ServeArgs) -> Result<ServerConfig, String> {
    let mut datasets = Vec::new();
    for input in &args.inputs {
        datasets.push(load_dataset(input)?);
    }
    Ok(ServerConfig {
        datasets,
        budget: args.budget,
        ledger_path: args.ledger.clone(),
        epsilon: args.epsilon,
        sample_size: args.sample_size,
        seed: args.seed,
        threads: args.threads,
        max_connections: args.max_connections,
        max_inflight_prepares: args.max_inflight,
        queue_capacity: args.queue_capacity,
        slow_query_ms: args.slow_query_ms,
        ledger_commit_us: args.ledger_commit_us,
        cache_capacity: args.cache_capacity,
        trace_capacity: ServerConfig::default().trace_capacity,
        // `serve` is a daemon: the structured event log goes to stderr.
        log_stderr: true,
        fault: Default::default(),
        store_path: args.store.clone(),
        attach: args.attach.clone(),
        allow_admin: args.allow_admin,
        columnar: ServerConfig::default().columnar,
    })
}

/// The `serve` subcommand: load the CSVs, bind, announce, serve until a
/// `shutdown` request drains the daemon.
///
/// # Errors
///
/// Dataset, bind, ledger or accept-loop failures.
pub fn run_serve(args: &ServeArgs) -> Result<(), String> {
    let config = build_server_config(args)?;
    let names = config
        .datasets
        .iter()
        .map(|d| d.name.clone())
        .collect::<Vec<_>>()
        .join(", ");
    let server = Server::bind(config, &format!("127.0.0.1:{}", args.port))
        .map_err(|e| format!("cannot start server: {e}"))?;
    // Same announcement contract as upa-serverd: first stdout line
    // carries the bound address.
    println!("upa-server listening on {}", server.local_addr());
    println!("serving datasets: {names}");
    server.run().map_err(|e| format!("server failed: {e}"))
}

/// The `query` subcommand's result, ready for the binary to print.
#[derive(Debug)]
pub struct RemoteRelease {
    /// The release reply.
    pub reply: upa_server::ReleaseReply,
    /// The budget after the release, when `--remaining` asked for it.
    pub budget: Option<upa_server::BudgetReply>,
}

/// The `query` subcommand: one connection, one release (with the audit
/// when `--stats` is set), optionally the budget afterwards.
///
/// # Errors
///
/// Connection, protocol, or server-side failures (budget refusals
/// included), as printable messages.
pub fn run_remote_query(args: &QueryArgs) -> Result<RemoteRelease, String> {
    let mut builder = Client::builder().retry_busy(args.retry_busy);
    if let Some(ms) = args.connect_timeout_ms {
        builder = builder.connect_timeout(std::time::Duration::from_millis(ms));
    }
    if let Some(ms) = args.timeout_ms {
        builder = builder.read_timeout(std::time::Duration::from_millis(ms));
    }
    let mut client = builder
        .connect(&args.addr)
        .map_err(|e| format!("cannot connect to {}: {e}", args.addr))?;
    let reply = client
        .release_with_deadline(
            &args.dataset,
            &args.query,
            &args.column,
            args.epsilon,
            args.stats,
            args.deadline_ms,
        )
        .map_err(|e| e.to_string())?;
    let budget = if args.remaining {
        client.budget(&args.dataset).map_err(|e| e.to_string())?
    } else {
        None
    };
    Ok(RemoteRelease { reply, budget })
}

/// Usage text for `upa-cli metrics`.
pub const METRICS_USAGE: &str = "\
usage: upa-cli metrics --addr HOST:PORT [--watch] [--interval-ms MS]
                       [--count N] [--json]

Scrapes a running daemon's `metrics` op. By default prints the
Prometheus-style text exposition once. --json prints the structured
snapshot instead. --watch re-scrapes every --interval-ms (default 1000)
and renders a compact live summary; --count stops after N scrapes
(0 = until interrupted).";

/// Parsed `metrics` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsArgs {
    /// Server address (`host:port`).
    pub addr: String,
    /// Re-scrape and render a live summary.
    pub watch: bool,
    /// Milliseconds between watch scrapes.
    pub interval_ms: u64,
    /// Watch iterations (0 = until interrupted).
    pub count: u64,
    /// Print the structured snapshot as JSON instead of exposition.
    pub json: bool,
}

impl Default for MetricsArgs {
    fn default() -> Self {
        MetricsArgs {
            addr: String::new(),
            watch: false,
            interval_ms: 1000,
            count: 0,
            json: false,
        }
    }
}

impl MetricsArgs {
    /// Parses `metrics` flags.
    ///
    /// # Errors
    ///
    /// A printable message for unknown or malformed flags.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<MetricsArgs, String> {
        let mut args = MetricsArgs::default();
        let mut it = argv.into_iter();
        let need = |it: &mut dyn Iterator<Item = String>, flag: &str| {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--addr" => args.addr = need(&mut it, "--addr")?,
                "--watch" => args.watch = true,
                "--interval-ms" => {
                    args.interval_ms = parse_num(&need(&mut it, "--interval-ms")?, "--interval-ms")?
                }
                "--count" => args.count = parse_num(&need(&mut it, "--count")?, "--count")?,
                "--json" => args.json = true,
                "--help" | "-h" => return Err(METRICS_USAGE.to_string()),
                other => return Err(format!("unknown flag '{other}'\n{METRICS_USAGE}")),
            }
        }
        if args.addr.is_empty() {
            return Err(format!("--addr is required\n{METRICS_USAGE}"));
        }
        Ok(args)
    }
}

/// The value of `label` spliced into `name` (`upa_x{label="v"}` → `v`).
fn label_value<'a>(name: &'a str, label: &str) -> Option<&'a str> {
    let needle = format!("{label}=\"");
    let start = name.find(&needle)? + needle.len();
    let end = name[start..].find('"')? + start;
    Some(&name[start..end])
}

/// Renders one compact `--watch` frame from a metrics snapshot.
pub fn render_watch(snapshot: &upa_server::RegistrySnapshot) -> String {
    let uptime = snapshot
        .gauges
        .get("upa_uptime_seconds")
        .copied()
        .unwrap_or(0.0);
    let mut out = format!("-- upa-server metrics (uptime {uptime:.1}s) --\n");

    let mut requests = Vec::new();
    for (name, count) in &snapshot.counters {
        if name.starts_with("upa_requests_total{") && *count > 0 {
            if let Some(op) = label_value(name, "op") {
                requests.push(format!("{op}={count}"));
            }
        }
    }
    if !requests.is_empty() {
        out.push_str(&format!("requests: {}\n", requests.join(" ")));
    }

    for (title, name) in [
        ("release latency", "upa_release_latency_us"),
        ("queue wait", "upa_queue_wait_us"),
        ("engine prepare", "upa_engine_prepare_us"),
        ("ledger fsync", "upa_ledger_fsync_us"),
    ] {
        if let Some(h) = snapshot.histograms.get(name) {
            if h.count > 0 {
                out.push_str(&format!(
                    "{title} µs: p50={} p99={} max={} (n={})\n",
                    h.quantile(0.50),
                    h.quantile(0.99),
                    h.max(),
                    h.count
                ));
            }
        }
    }

    let mut budgets = Vec::new();
    for (name, v) in &snapshot.gauges {
        if name.starts_with("upa_budget_epsilon_remaining{") {
            if let Some(dataset) = label_value(name, "dataset") {
                budgets.push(format!("{dataset}={v:.4}"));
            }
        }
    }
    if !budgets.is_empty() {
        out.push_str(&format!("budget ε remaining: {}\n", budgets.join(" ")));
    }
    out
}

/// The `metrics` subcommand: scrape once (exposition or JSON), or
/// `--watch` a live summary.
///
/// # Errors
///
/// Connection or protocol failures, as printable messages.
pub fn run_metrics(args: &MetricsArgs) -> Result<(), String> {
    let mut client =
        Client::connect(&args.addr).map_err(|e| format!("cannot connect to {}: {e}", args.addr))?;
    if !args.watch {
        let reply = client.metrics().map_err(|e| e.to_string())?;
        if args.json {
            println!("{}", reply.snapshot.to_json());
        } else {
            print!("{}", reply.exposition);
        }
        return Ok(());
    }
    let mut scrapes = 0u64;
    loop {
        let reply = client.metrics().map_err(|e| e.to_string())?;
        print!("{}", render_watch(&reply.snapshot));
        scrapes += 1;
        if args.count != 0 && scrapes >= args.count {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(args.interval_ms));
    }
}

/// Formats a remote release for the terminal (the audit is rendered
/// separately by the shared `--stats` path).
pub fn render_remote(release: &RemoteRelease) -> String {
    let reply = &release.reply;
    let mut out = format!(
        "released (ε={}): {:.6}\n  query              : {}\n  noise scale        : {:.6}\n  sampled records    : {}",
        reply.epsilon, reply.released, reply.query_id, reply.noise_scale, reply.sample_size,
    );
    let cache = match (reply.cached, reply.prepare_us) {
        (true, _) => "hit".to_string(),
        (false, Some(us)) => format!("miss (prepared in {us} µs)"),
        (false, None) => "miss".to_string(),
    };
    out.push_str(&format!("\n  cache              : {cache}"));
    if let Some(remaining) = reply.budget_remaining {
        out.push_str(&format!("\n  budget remaining   : {remaining:.6}"));
    }
    if let Some(budget) = &release.budget {
        out.push_str(&format!(
            "\n  budget             : {:.6} spent of {:.6} ({:.6} left)",
            budget.spent, budget.total, budget.remaining
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_serve_flags() {
        let a = ServeArgs::parse(argv(
            "--input a.csv --input b.csv --port 0 --budget 2.0 --ledger l.jsonl \
             --epsilon 0.3 --sample-size 64 --seed 7 --threads 2 \
             --max-connections 8 --max-inflight 2 --queue-capacity 16 \
             --ledger-commit-us 500 --cache-capacity 32",
        ))
        .unwrap();
        assert_eq!(a.inputs, vec!["a.csv", "b.csv"]);
        assert_eq!(a.port, 0);
        assert_eq!(a.budget, Some(2.0));
        assert_eq!(a.ledger.as_deref(), Some(Path::new("l.jsonl")));
        assert_eq!(a.epsilon, 0.3);
        assert_eq!(a.max_inflight, 2);
        assert_eq!(a.queue_capacity, 16);
        assert_eq!(a.ledger_commit_us, 500);
        assert_eq!(a.cache_capacity, 32);
        assert!(
            ServeArgs::parse(argv("--port 1")).is_err(),
            "some data source required"
        );
        assert!(ServeArgs::parse(argv("--input a.csv --nope")).is_err());
    }

    #[test]
    fn parses_store_serve_flags() {
        let a = ServeArgs::parse(argv(
            "--store ./s --attach people --attach trips --allow-admin",
        ))
        .unwrap();
        assert!(a.inputs.is_empty(), "a store-only daemon is valid");
        assert_eq!(a.store, Some(PathBuf::from("./s")));
        assert_eq!(a.attach, vec!["people", "trips"]);
        assert!(a.allow_admin);
        let config = build_server_config(&a).unwrap();
        assert_eq!(config.store_path, Some(PathBuf::from("./s")));
        assert_eq!(config.attach, vec!["people", "trips"]);
        assert!(config.allow_admin);
        assert!(
            ServeArgs::parse(argv("--attach x")).is_err(),
            "--attach requires --store"
        );
    }

    #[test]
    fn parses_query_flags() {
        let a = QueryArgs::parse(argv(
            "--addr 127.0.0.1:7878 --dataset people --query mean --column age --epsilon 0.5 \
             --stats --remaining --deadline-ms 250 --connect-timeout-ms 1000 --timeout-ms 5000 \
             --retry-busy 3",
        ))
        .unwrap();
        assert_eq!(a.addr, "127.0.0.1:7878");
        assert_eq!(a.dataset, "people");
        assert_eq!(a.query, "mean");
        assert_eq!(a.column, "age");
        assert_eq!(a.epsilon, Some(0.5));
        assert!(a.stats);
        assert!(a.remaining);
        assert_eq!(a.deadline_ms, Some(250));
        assert_eq!(a.connect_timeout_ms, Some(1000));
        assert_eq!(a.timeout_ms, Some(5000));
        assert_eq!(a.retry_busy, 3);
        assert!(
            QueryArgs::parse(argv("--query sum")).is_err(),
            "addr required"
        );
    }

    #[test]
    fn load_dataset_keeps_numeric_columns_only() {
        let dir = std::env::temp_dir().join("upa_remote_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("people_{}.csv", std::process::id()));
        std::fs::write(&path, "age,name,score\n31,ada,9.5\n44,lin,7.25\n").unwrap();
        let spec = load_dataset(&path.to_string_lossy()).unwrap();
        assert_eq!(spec.rows, 2);
        assert_eq!(spec.columns.len(), 2, "name is not numeric");
        assert_eq!(spec.columns["age"], vec![31.0, 44.0]);
        assert_eq!(spec.columns["score"], vec![9.5, 7.25]);
        assert!(spec.name.starts_with("people_"));
        let _ = std::fs::remove_file(&path);
    }

    /// End to end over a loopback daemon: serve a CSV in-process, query
    /// it remotely, and check the remote audit renders through the same
    /// renderer a local run uses.
    #[test]
    fn serve_and_query_round_trip() {
        let dir = std::env::temp_dir().join("upa_remote_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("served_{}.csv", std::process::id()));
        let mut text = String::from("v\n");
        for i in 0..2_000 {
            text.push_str(&format!("{}\n", i % 50));
        }
        std::fs::write(&path, text).unwrap();

        let serve_args = ServeArgs {
            inputs: vec![path.to_string_lossy().into_owned()],
            budget: Some(1.0),
            epsilon: 0.25,
            sample_size: 40,
            threads: 2,
            ..ServeArgs::default()
        };
        let config = build_server_config(&serve_args).unwrap();
        let dataset = config.datasets[0].name.clone();
        let server = Server::bind(config, "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();
        let handle = server.shutdown_handle();
        let join = std::thread::spawn(move || server.run());

        let query_args = QueryArgs {
            addr,
            dataset,
            query: "mean".into(),
            column: "v".into(),
            stats: true,
            remaining: true,
            ..QueryArgs::default()
        };
        let release = run_remote_query(&query_args).unwrap();
        assert_eq!(release.reply.epsilon, 0.25);
        assert!((release.budget.unwrap().remaining - 0.75).abs() < 1e-9);
        let text = render_remote(&release);
        assert!(text.contains("released (ε=0.25)"));
        assert!(text.contains("budget"));
        // The first release of a key pays the cold prepare and says so.
        assert!(!release.reply.cached);
        assert!(release.reply.prepare_us.is_some());
        assert!(text.contains("cache              : miss (prepared in"));
        let audit = release.reply.audit.expect("--stats carries the audit");
        let rendered = audit.render();
        assert!(rendered.contains("Query: mean"));
        assert!(rendered.contains("stages:"));

        // A repeat of the same query hits the prepared cache.
        let again = run_remote_query(&query_args).unwrap();
        assert!(again.reply.cached);
        assert_eq!(again.reply.prepare_us, None);
        assert!(render_remote(&again).contains("cache              : hit"));

        handle.shutdown();
        join.join().unwrap().unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
