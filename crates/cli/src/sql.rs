//! DP releases for single-table SQL over CSV data.
//!
//! `upa-cli --sql "SELECT COUNT(*) FROM data WHERE age >= 18"` loads the
//! CSV into a typed relation named `data`, parses the SQL, and — when the
//! plan is a single-table `COUNT(*)`/`SUM(expr)` with an optional `WHERE`
//! — converts it into a Map/Reduce decomposition over the table's rows so
//! the release goes through the full UPA pipeline. Each CSV row is the
//! protected individual record.

use crate::csv::CsvDocument;
use dataflow::Context;
use upa_core::domain::EmpiricalSampler;
use upa_core::query::MapReduceQuery;
use upa_core::{QueryAudit, Upa, UpaConfig, UpaResult};
use upa_relational::expr::BoundExpr;
use upa_relational::plan::{Aggregate, LogicalPlan};
use upa_relational::value::{JoinKey, Relation, Row, Schema, Value};

/// Table name CSV data is registered under.
pub const TABLE: &str = "data";

/// Infers per-column types: a column where every non-empty cell parses as
/// `i64` becomes `Int` (groupable/joinable), one where every cell parses
/// as `f64` becomes `Float`, and everything else is `Str`.
pub fn typed_rows(doc: &CsvDocument) -> Vec<Row> {
    let cols = doc.header.len();
    #[derive(Clone, Copy, PartialEq)]
    enum Kind {
        Int,
        Float,
        Str,
    }
    let kinds: Vec<Kind> = (0..cols)
        .map(|c| {
            let mut kind = Kind::Int;
            for r in &doc.rows {
                let cell = r[c].trim();
                if cell.is_empty() {
                    continue;
                }
                if kind == Kind::Int && cell.parse::<i64>().is_err() {
                    kind = Kind::Float;
                }
                if kind == Kind::Float && cell.parse::<f64>().is_err() {
                    kind = Kind::Str;
                    break;
                }
            }
            kind
        })
        .collect();
    doc.rows
        .iter()
        .map(|r| {
            r.iter()
                .enumerate()
                .map(|(c, cell)| match kinds[c] {
                    Kind::Int => Value::Int(cell.trim().parse().unwrap_or(0)),
                    Kind::Float => Value::Float(cell.trim().parse().unwrap_or(0.0)),
                    Kind::Str => Value::str(cell),
                })
                .collect()
        })
        .collect()
}

/// Builds the schema for a CSV header, qualified under [`TABLE`].
pub fn schema_of(doc: &CsvDocument) -> Schema {
    let cols: Vec<&str> = doc.header.iter().map(|s| s.as_str()).collect();
    Schema::new(TABLE, &cols)
}

/// A stable content hash of a row, used as UPA's half key.
fn row_key(row: &Row) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut mix = |bits: u64| {
        h ^= bits;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for v in row {
        match v {
            Value::Int(i) => mix(*i as u64),
            Value::Float(f) => mix(f.to_bits()),
            Value::Bool(b) => mix(*b as u64),
            Value::Str(s) => {
                for b in s.as_bytes() {
                    mix(*b as u64);
                }
            }
        }
    }
    h
}

/// Converts a single-table aggregate plan into a Map/Reduce decomposition
/// over the table's rows.
///
/// # Errors
///
/// Returns a message if the plan uses joins/projections (not a
/// single-table aggregate), references another table, or its expressions
/// fail to bind against the CSV schema.
pub fn plan_to_query(
    plan: &LogicalPlan,
    schema: &Schema,
) -> Result<MapReduceQuery<Row, f64, f64>, String> {
    let (input, agg) = match plan {
        LogicalPlan::Aggregate { input, agg } => (input.as_ref(), agg),
        _ => return Err("the SQL statement must be a COUNT(*) or SUM(...) aggregate".into()),
    };
    let (scan, predicate) = match input {
        LogicalPlan::Scan { table } => (table, None),
        LogicalPlan::Filter { input, predicate } => match input.as_ref() {
            LogicalPlan::Scan { table } => (table, Some(predicate.clone())),
            _ => return Err("only single-table queries can be released under DP".into()),
        },
        _ => return Err("only single-table queries can be released under DP".into()),
    };
    if scan != TABLE {
        return Err(format!(
            "unknown table '{scan}' (the CSV is registered as '{TABLE}')"
        ));
    }
    let bound_pred: Option<BoundExpr> = match predicate {
        Some(p) => Some(p.bind(schema).map_err(|e| e.to_string())?),
        None => None,
    };
    let value_expr: Option<BoundExpr> = match agg {
        Aggregate::CountStar => None,
        Aggregate::Sum(e) => Some(e.bind(schema).map_err(|e| e.to_string())?),
    };
    let name = match agg {
        Aggregate::CountStar => "sql_count",
        Aggregate::Sum(_) => "sql_sum",
    };
    Ok(MapReduceQuery::scalar_sum(name, move |row: &Row| {
        let keep = match &bound_pred {
            Some(p) => p.eval_bool(row).unwrap_or(false),
            None => true,
        };
        if !keep {
            return 0.0;
        }
        match &value_expr {
            Some(e) => e.eval(row).ok().and_then(|v| v.as_f64()).unwrap_or(0.0),
            None => 1.0,
        }
    })
    .with_half_key(row_key))
}

/// A DP release of a SQL statement: either a scalar aggregate or a
/// grouped histogram.
#[derive(Debug, Clone)]
pub enum SqlRelease {
    /// Scalar aggregate: the UPA result plus the exact executor value.
    Scalar(Box<UpaResult<f64>>, f64),
    /// Grouped aggregate: group labels with the vector UPA result.
    Grouped {
        /// Human-readable group labels, positionally matching the result
        /// components.
        labels: Vec<String>,
        /// The per-group UPA release.
        result: Box<UpaResult<Vec<f64>>>,
    },
}

/// Builds a per-group DP query over a single-table GROUP BY plan. The
/// group labels come from the observed distinct key values (standard for
/// categorical domains; the *counts* are protected, the category labels
/// are treated as public).
type GroupQuery = (Vec<String>, MapReduceQuery<Row, Vec<f64>, Vec<f64>>);

fn group_plan_to_query(
    key: &str,
    agg: &Aggregate,
    predicate: Option<&upa_relational::expr::Expr>,
    schema: &Schema,
    rows: &[Row],
) -> Result<GroupQuery, String> {
    let ki = schema
        .index_of(key)
        .ok_or_else(|| format!("unknown column '{key}'"))?;
    let mut keys: Vec<JoinKey> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for row in rows {
        let k = row[ki]
            .join_key()
            .ok_or_else(|| format!("column '{key}' cannot be grouped (float keys)"))?;
        if seen.insert(k.clone()) {
            keys.push(k);
        }
    }
    // Labels in first-seen key order, positionally matching the bins.
    let label_of: std::collections::HashMap<JoinKey, String> = rows
        .iter()
        .map(|r| (r[ki].join_key().expect("checked above"), r[ki].to_string()))
        .collect();
    let ordered_labels: Vec<String> = keys
        .iter()
        .map(|k| label_of.get(k).cloned().unwrap_or_default())
        .collect();
    let index_of: std::collections::HashMap<JoinKey, usize> = keys
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, k)| (k, i))
        .collect();
    let bound_pred = match predicate {
        Some(p) => Some(p.bind(schema).map_err(|e| e.to_string())?),
        None => None,
    };
    let value_expr = match agg {
        Aggregate::CountStar => None,
        Aggregate::Sum(e) => Some(e.bind(schema).map_err(|e| e.to_string())?),
    };
    let bins = keys.len();
    let query = MapReduceQuery::new(
        "sql_group_by",
        move |row: &Row| {
            let mut out = vec![0.0; bins];
            let keep = match &bound_pred {
                Some(p) => p.eval_bool(row).unwrap_or(false),
                None => true,
            };
            if keep {
                if let Some(k) = row[ki].join_key() {
                    if let Some(&b) = index_of.get(&k) {
                        out[b] = match &value_expr {
                            None => 1.0,
                            Some(e) => e.eval(row).ok().and_then(|v| v.as_f64()).unwrap_or(0.0),
                        };
                    }
                }
            }
            out
        },
        |a: &Vec<f64>, b: &Vec<f64>| a.iter().zip(b).map(|(x, y)| x + y).collect(),
        move |acc: Option<&Vec<f64>>| acc.cloned().unwrap_or_else(|| vec![0.0; bins]),
    )
    .with_half_key(row_key);
    Ok((ordered_labels, query))
}

/// Full SQL flow: type the CSV, parse the statement, release under DP.
/// Also returns the audit of the pipeline run, for `--stats`.
///
/// # Errors
///
/// Returns a printable message for parse, shape or pipeline failures.
pub fn run_sql_release(
    doc: &CsvDocument,
    sql: &str,
    args: &crate::Args,
) -> Result<(SqlRelease, Option<QueryAudit>), String> {
    let plan = upa_relational::parse_sql(sql).map_err(|e| e.to_string())?;
    let schema = schema_of(doc);
    let rows = typed_rows(doc);
    let ctx = if args.threads == 0 {
        Context::default()
    } else {
        Context::with_threads(args.threads)
    };
    let config = UpaConfig {
        epsilon: args.epsilon,
        sample_size: args.sample_size,
        seed: args.seed,
        ..UpaConfig::default()
    };

    if let LogicalPlan::GroupBy { input, key, agg } = &plan {
        let (table, predicate) = match input.as_ref() {
            LogicalPlan::Scan { table } => (table, None),
            LogicalPlan::Filter { input, predicate } => match input.as_ref() {
                LogicalPlan::Scan { table } => (table, Some(predicate)),
                _ => return Err("only single-table queries can be released under DP".into()),
            },
            _ => return Err("only single-table queries can be released under DP".into()),
        };
        if table != TABLE {
            return Err(format!(
                "unknown table '{table}' (the CSV is registered as '{TABLE}')"
            ));
        }
        let (labels, query) = group_plan_to_query(key, agg, predicate, &schema, &rows)?;
        let mut upa = Upa::new(ctx.clone(), config);
        let dataset = ctx.parallelize_default(rows.clone());
        let domain = EmpiricalSampler::new(rows);
        let result = upa
            .run(&dataset, &query, &domain)
            .map_err(|e| e.to_string())?;
        let audit = upa.last_audit().cloned();
        return Ok((
            SqlRelease::Grouped {
                labels,
                result: Box::new(result),
            },
            audit,
        ));
    }

    let query = plan_to_query(&plan, &schema)?;
    // Cross-check with the relational executor.
    let mut catalog = upa_relational::Catalog::new();
    catalog.register(Relation::from_rows(&ctx, schema, rows.clone(), 8));
    let exact = catalog
        .execute(&plan)
        .map_err(|e| e.to_string())?
        .as_scalar()
        .ok_or("aggregate expected")?;
    let mut upa = Upa::new(ctx.clone(), config);
    let dataset = ctx.parallelize_default(rows.clone());
    let domain = EmpiricalSampler::new(rows);
    let result = upa
        .run(&dataset, &query, &domain)
        .map_err(|e| e.to_string())?;
    debug_assert!((result.raw - exact).abs() <= 1e-6 * exact.abs().max(1.0));
    let audit = upa.last_audit().cloned();
    Ok((SqlRelease::Scalar(Box::new(result), exact), audit))
}

/// Backwards-compatible scalar entry point.
///
/// # Errors
///
/// As [`run_sql_release`], plus an error for GROUP BY statements (use
/// [`run_sql_release`] for those).
pub fn run_sql(
    doc: &CsvDocument,
    sql: &str,
    args: &crate::Args,
) -> Result<(UpaResult<f64>, f64), String> {
    match run_sql_release(doc, sql, args)?.0 {
        SqlRelease::Scalar(result, exact) => Ok((*result, exact)),
        SqlRelease::Grouped { .. } => {
            Err("GROUP BY statements produce grouped output; use run_sql_release".into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv;

    fn doc() -> CsvDocument {
        let mut text = String::from("age,city,income\n");
        for i in 0..2_000 {
            text.push_str(&format!(
                "{},{},{}\n",
                i % 90,
                if i % 3 == 0 { "york" } else { "leeds" },
                (i % 50) * 100
            ));
        }
        csv::parse(&text).unwrap()
    }

    fn args() -> crate::Args {
        crate::Args {
            input: "unused".into(),
            epsilon: 1.0,
            sample_size: 100,
            ..crate::Args::default()
        }
    }

    #[test]
    fn typing_detects_int_float_and_string_columns() {
        let d = doc();
        let rows = typed_rows(&d);
        assert!(matches!(rows[0][0], Value::Int(_)), "age is integral");
        assert!(matches!(rows[0][1], Value::Str(_)));
        assert!(matches!(rows[0][2], Value::Int(_)));
        let mixed = csv::parse("a\n1\n2.5\n").unwrap();
        assert!(matches!(typed_rows(&mixed)[0][0], Value::Float(_)));
    }

    #[test]
    fn sql_count_with_predicate() {
        let d = doc();
        let (result, exact) =
            run_sql(&d, "SELECT COUNT(*) FROM data WHERE age >= 18", &args()).unwrap();
        let want = (0..2_000).filter(|i| i % 90 >= 18).count() as f64;
        assert_eq!(exact, want);
        assert_eq!(result.raw, want);
        assert!((result.max_empirical_sensitivity() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sql_sum_with_string_filter() {
        let d = doc();
        let (result, exact) = run_sql(
            &d,
            "SELECT SUM(income) FROM data WHERE city = 'york'",
            &args(),
        )
        .unwrap();
        let want: f64 = (0..2_000)
            .filter(|i| i % 3 == 0)
            .map(|i| ((i % 50) * 100) as f64)
            .sum();
        assert_eq!(exact, want);
        assert_eq!(result.raw, want);
    }

    #[test]
    fn unfiltered_count() {
        let d = doc();
        let (result, exact) = run_sql(&d, "SELECT COUNT(*) FROM data", &args()).unwrap();
        assert_eq!(exact, 2_000.0);
        assert_eq!(result.raw, 2_000.0);
    }

    #[test]
    fn grouped_count_release() {
        let d = doc();
        let (release, audit) =
            run_sql_release(&d, "SELECT city, COUNT(*) FROM data GROUP BY city", &args()).unwrap();
        let audit = audit.expect("grouped release has an audit");
        assert_eq!(audit.query, "sql_group_by");
        assert!(audit.stage_nanos("enforce") > 0);
        match release {
            SqlRelease::Grouped { labels, result } => {
                assert_eq!(labels.len(), 2);
                let york = labels.iter().position(|l| l == "york").expect("york group");
                let leeds = labels
                    .iter()
                    .position(|l| l == "leeds")
                    .expect("leeds group");
                let want_york = (0..2_000).filter(|i| i % 3 == 0).count() as f64;
                assert_eq!(result.raw[york], want_york);
                assert_eq!(result.raw[leeds], 2_000.0 - want_york);
                // Per-group influence of one record is 1.
                for s in &result.empirical_sensitivity {
                    assert!((s - 1.0).abs() < 1e-9);
                }
            }
            other => panic!("expected grouped release, got {other:?}"),
        }
    }

    #[test]
    fn grouped_sum_with_filter() {
        let d = doc();
        let (release, _audit) = run_sql_release(
            &d,
            "SELECT city, SUM(income) FROM data WHERE age >= 10 GROUP BY city",
            &args(),
        )
        .unwrap();
        match release {
            SqlRelease::Grouped { labels, result } => {
                let want: f64 = (0..2_000)
                    .filter(|i| i % 90 >= 10)
                    .map(|i| ((i % 50) * 100) as f64)
                    .sum();
                assert!((result.raw.iter().sum::<f64>() - want).abs() < 1e-6);
                assert_eq!(labels.len(), result.raw.len());
            }
            other => panic!("expected grouped release, got {other:?}"),
        }
    }

    #[test]
    fn scalar_entry_point_rejects_group_by() {
        let d = doc();
        assert!(
            run_sql(&d, "SELECT city, COUNT(*) FROM data GROUP BY city", &args())
                .unwrap_err()
                .contains("grouped output")
        );
    }

    #[test]
    fn unsupported_shapes_are_rejected_cleanly() {
        let d = doc();
        assert!(run_sql(&d, "SELECT COUNT(*) FROM other", &args())
            .unwrap_err()
            .contains("unknown table"));
        assert!(run_sql(
            &d,
            "SELECT COUNT(*) FROM data JOIN data ON data.age = data.age",
            &args()
        )
        .unwrap_err()
        .contains("single-table"));
        assert!(
            run_sql(&d, "SELECT COUNT(*) FROM data WHERE nope = 1", &args())
                .unwrap_err()
                .contains("unknown column")
        );
        assert!(run_sql(&d, "not sql at all", &args())
            .unwrap_err()
            .contains("parse error"));
    }
}
