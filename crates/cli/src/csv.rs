//! CSV parsing for the CLI — re-exported from [`upa_store::csv`].
//!
//! The parser moved into the store crate when it became the ingest
//! path's parser too; the CLI keeps this module so `upa_cli::csv::parse`
//! and friends stay where users (and `sql.rs`) expect them. One parser,
//! two front doors: a CSV that ingests cleanly also queries cleanly.

pub use upa_store::csv::{parse, CsvDocument, CsvError};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_numeric_error_names_line_column_and_cell() {
        let doc = parse("age,name\n41,alice\nx7,bob\n").unwrap();
        let err = doc.numeric_column("age").unwrap_err();
        // The message must point the user at the exact offending cell:
        // file line (header is line 1), column name, and the raw text.
        assert_eq!(
            err.to_string(),
            "line 3, column 'age': 'x7' is not a number"
        );
        assert!(matches!(
            err,
            CsvError::NotNumeric { line: 3, ref column, ref cell }
                if column == "age" && cell == "x7"
        ));
    }

    #[test]
    fn reexport_covers_the_full_parse_surface() {
        let doc = parse("a,b\n1,\"two, three\"\n").unwrap();
        assert_eq!(doc.header, vec!["a", "b"]);
        assert_eq!(doc.rows[0][1], "two, three");
        assert_eq!(doc.numeric_column("a").unwrap(), vec![1.0]);
        assert!(matches!(
            doc.numeric_column("missing"),
            Err(CsvError::UnknownColumn(_))
        ));
        assert_eq!(parse(""), Err(CsvError::Empty));
    }
}
