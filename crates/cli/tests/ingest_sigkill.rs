//! Crash-safe ingest, end to end: `SIGKILL` a real `upa-cli ingest`
//! process mid-write and verify the half-written dataset is invisible —
//! the store lists nothing, a load refuses, and only a `.tmp-*` debris
//! directory (never a manifest) remains. A clean re-ingest of the same
//! name must then succeed, proving the debris doesn't wedge the store.

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};
use upa_store::{Store, StoreError, MANIFEST_FILE};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("upa_ingest_kill_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn write_csv(path: &PathBuf, rows: usize) {
    let mut text = String::from("v,w\n");
    for i in 0..rows {
        text.push_str(&format!("{},{}\n", i % 100, (i % 7) as f64 + 0.5));
    }
    std::fs::write(path, text).expect("write csv");
}

#[test]
fn sigkill_mid_ingest_leaves_no_visible_dataset() {
    let root = temp_dir("mid");
    let store_dir = root.join("store");
    let csv = root.join("numbers.csv");
    write_csv(&csv, 5_000);

    // Slow each chunk write down so the kill reliably lands between the
    // first chunk file and the manifest publish.
    let mut child = Command::new(env!("CARGO_BIN_EXE_upa-cli"))
        .arg("ingest")
        .arg(&csv)
        .arg("--store")
        .arg(&store_dir)
        .args(["--chunk-rows", "256"])
        .env("UPA_STORE_INGEST_DELAY_MS", "50")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn upa-cli ingest");

    // Wait until the ingest has actually started writing its temp dir,
    // then kill it mid-flight.
    let deadline = Instant::now() + Duration::from_secs(10);
    let tmp_started = loop {
        if let Ok(entries) = std::fs::read_dir(&store_dir) {
            let tmp = entries
                .flatten()
                .any(|e| e.file_name().to_string_lossy().starts_with(".tmp-"));
            if tmp {
                break true;
            }
        }
        if Instant::now() > deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert!(tmp_started, "ingest never started writing its temp dir");
    child.kill().expect("SIGKILL the ingest");
    let _ = child.wait();

    // "Restart": a fresh Store over the same directory. The torn ingest
    // must be invisible.
    let store = Store::open(&store_dir).expect("store opens after the crash");
    assert_eq!(
        store.datasets().expect("list"),
        Vec::<String>::new(),
        "a half-written dataset must not be listed"
    );
    assert!(
        matches!(store.load("numbers", None), Err(StoreError::NotFound(_))),
        "a half-written dataset must not load"
    );
    assert!(
        !store_dir.join("numbers").join(MANIFEST_FILE).exists(),
        "no manifest may exist for the torn ingest"
    );

    // The wreckage is only ever a hidden temp dir; re-ingesting the
    // same dataset cleanly must succeed despite it.
    let status = Command::new(env!("CARGO_BIN_EXE_upa-cli"))
        .arg("ingest")
        .arg(&csv)
        .arg("--store")
        .arg(&store_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("re-run upa-cli ingest");
    assert!(status.success(), "clean re-ingest failed");
    let loaded = store.load("numbers", None).expect("dataset now loads");
    assert_eq!(loaded.rows, 5_000);
    assert_eq!(loaded.columns.len(), 2);

    let _ = std::fs::remove_dir_all(&root);
}
