//! Text-file sources and sinks — the engine's `textFile`/`saveAsTextFile`
//! analogue (line-oriented, std-only).

use crate::context::Context;
use crate::dataset::Dataset;
use crate::Data;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Reads a file into a dataset of lines, distributed over `partitions`.
///
/// # Errors
///
/// Propagates I/O errors from opening or reading the file.
pub fn read_lines(
    ctx: &Context,
    path: impl AsRef<Path>,
    partitions: usize,
) -> std::io::Result<Dataset<String>> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    let lines: Vec<String> = reader.lines().collect::<Result<_, _>>()?;
    Ok(ctx.parallelize(lines, partitions))
}

/// Writes a dataset as one line per record via `Display`, in partition
/// order.
///
/// # Errors
///
/// Propagates I/O errors from creating or writing the file.
pub fn write_lines<T: Data + std::fmt::Display>(
    ds: &Dataset<T>,
    path: impl AsRef<Path>,
) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    for part in ds.partitions() {
        for record in part.iter() {
            writeln!(w, "{record}")?;
        }
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dataflow_io_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn round_trips_lines() {
        let ctx = Context::with_threads(2);
        let path = temp_path("roundtrip.txt");
        let data: Vec<i64> = (0..1_000).collect();
        let ds = ctx.parallelize(data.clone(), 4);
        write_lines(&ds, &path).expect("write");
        let back = read_lines(&ctx, &path, 3).expect("read");
        assert_eq!(back.len(), 1_000);
        let parsed: Vec<i64> = back
            .map(|l| l.parse::<i64>().expect("numeric line"))
            .collect();
        assert_eq!(parsed, data);
    }

    #[test]
    fn reads_empty_file() {
        let ctx = Context::with_threads(1);
        let path = temp_path("empty.txt");
        std::fs::write(&path, "").expect("write");
        let ds = read_lines(&ctx, &path, 2).expect("read");
        assert!(ds.is_empty());
    }

    #[test]
    fn missing_file_is_an_error() {
        let ctx = Context::with_threads(1);
        assert!(read_lines(&ctx, "/no/such/file/anywhere.txt", 2).is_err());
    }

    #[test]
    fn lines_feed_word_count() {
        use crate::pair::PairOps;
        let ctx = Context::with_threads(2);
        let path = temp_path("words.txt");
        std::fs::write(&path, "a b a\nb c\na\n").expect("write");
        let counts = read_lines(&ctx, &path, 2)
            .expect("read")
            .flat_map(|line| {
                line.split_whitespace()
                    .map(|w| (w.to_string(), 1u64))
                    .collect::<Vec<_>>()
            })
            .reduce_by_key(|a, b| a + b)
            .collect_as_map();
        assert_eq!(counts["a"], 3);
        assert_eq!(counts["b"], 2);
        assert_eq!(counts["c"], 1);
    }
}
