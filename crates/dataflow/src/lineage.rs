//! Operator lineage.
//!
//! Every [`crate::Dataset`] carries a lineage node recording the operator
//! that produced it and its parents, mirroring Spark's RDD lineage graph.
//! `explain()` renders the plan tree, which the examples use to show the
//! extra stages UPA inserts relative to a vanilla query.

use std::sync::Arc;

/// One node in the lineage DAG.
#[derive(Debug)]
pub struct Lineage {
    op: String,
    parents: Vec<Arc<Lineage>>,
}

impl Lineage {
    /// A source node (no parents).
    pub fn source(op: impl Into<String>) -> Arc<Self> {
        Arc::new(Lineage {
            op: op.into(),
            parents: Vec::new(),
        })
    }

    /// A derived node with one parent.
    pub fn derived(op: impl Into<String>, parent: Arc<Lineage>) -> Arc<Self> {
        Arc::new(Lineage {
            op: op.into(),
            parents: vec![parent],
        })
    }

    /// A derived node with multiple parents (joins, unions).
    pub fn derived_multi(op: impl Into<String>, parents: Vec<Arc<Lineage>>) -> Arc<Self> {
        Arc::new(Lineage {
            op: op.into(),
            parents,
        })
    }

    /// The operator name of this node.
    pub fn op(&self) -> &str {
        &self.op
    }

    /// Parent nodes.
    pub fn parents(&self) -> &[Arc<Lineage>] {
        &self.parents
    }

    /// Renders the lineage tree rooted at this node, one operator per line,
    /// children indented below their consumer.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.render(0, &mut out);
        out
    }

    fn render(&self, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.op);
        out.push('\n');
        for p in &self.parents {
            p.render(depth + 1, out);
        }
    }

    /// Total number of operators in the tree (counting shared subtrees once
    /// per occurrence).
    pub fn depth(&self) -> usize {
        1 + self.parents.iter().map(|p| p.depth()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explain_renders_tree() {
        let src = Lineage::source("parallelize[8]");
        let mapped = Lineage::derived("map", src);
        let other = Lineage::source("parallelize[4]");
        let joined = Lineage::derived_multi("join", vec![mapped, other]);
        let plan = joined.explain();
        assert!(plan.starts_with("join\n"));
        assert!(plan.contains("  map\n"));
        assert!(plan.contains("    parallelize[8]\n"));
        assert!(plan.contains("  parallelize[4]\n"));
    }

    #[test]
    fn depth_counts_longest_chain() {
        let src = Lineage::source("src");
        let a = Lineage::derived("a", Arc::clone(&src));
        let b = Lineage::derived("b", a);
        assert_eq!(b.depth(), 3);
        assert_eq!(src.depth(), 1);
    }

    #[test]
    fn accessors_expose_structure() {
        let src = Lineage::source("src");
        let node = Lineage::derived("map", Arc::clone(&src));
        assert_eq!(node.op(), "map");
        assert_eq!(node.parents().len(), 1);
        assert_eq!(node.parents()[0].op(), "src");
    }
}
