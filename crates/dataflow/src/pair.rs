//! Key-value (pair) operators: shuffle, `reduce_by_key`, `group_by_key`,
//! `join` — the wide dependencies of the engine.
//!
//! Every operator here moves data through an explicit two-phase shuffle
//! (map-side bucketing, reduce-side concatenation) that is counted by the
//! context's metrics. UPA's `joinDP` triggers this shuffle **twice** per
//! join where vanilla execution triggers it once (paper §V-C), which is the
//! mechanism behind the >100% overhead of TPCH4/TPCH13 in Figure 2(b).

use crate::context::Context;
use crate::dataset::Dataset;
use crate::lineage::Lineage;
use crate::partitioner::{HashPartitioner, Partitioner, RangePartitioner};
use crate::Data;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// One reduce-side bucket of a shuffled pair dataset.
type Bucket<K, V> = Arc<Vec<(K, V)>>;

/// Hash-partitions a pair dataset into `buckets` reduce-side partitions.
/// One full shuffle: every record is moved and counted.
pub(crate) fn shuffle_by_key<K: Data + Hash + Eq, V: Data>(
    ctx: &Context,
    ds: &Dataset<(K, V)>,
    buckets: usize,
) -> Vec<Bucket<K, V>> {
    shuffle_with(ctx, ds, buckets, Arc::new(HashPartitioner))
}

/// Shuffles a pair dataset into `buckets` reduce-side partitions using an
/// arbitrary [`Partitioner`]. One full shuffle: every record is moved and
/// counted.
pub(crate) fn shuffle_with<K: Data, V: Data, P: Partitioner<K> + 'static>(
    ctx: &Context,
    ds: &Dataset<(K, V)>,
    buckets: usize,
    partitioner: Arc<P>,
) -> Vec<Arc<Vec<(K, V)>>> {
    let total: u64 = ds.len() as u64;
    // Approximate wire size: in-memory record size × records. Heap
    // payloads of variable-size records are not chased, matching how
    // Spark reports shuffle bytes from its serialised buffers.
    let bytes = total * std::mem::size_of::<(K, V)>() as u64;
    ctx.record_shuffle(total, bytes);
    let scan_ns = ctx.scan_cost_ns();
    // Map side: split each partition into per-bucket runs.
    let bucketed: Vec<Vec<Vec<(K, V)>>> = ctx.run_tasks(
        "shuffle-write",
        ds.partitions().to_vec(),
        move |_i, part: Arc<Vec<(K, V)>>| {
            crate::context::scan_delay(part.len(), scan_ns);
            let mut out: Vec<Vec<(K, V)>> = (0..buckets).map(|_| Vec::new()).collect();
            for kv in part.iter() {
                out[partitioner.partition(&kv.0, buckets)].push(kv.clone());
            }
            out
        },
    );
    // Reduce side: concatenate run `b` of every map output.
    let bucketed = Arc::new(bucketed);
    ctx.run_tasks(
        "shuffle-read",
        (0..buckets).collect(),
        move |_i, b: usize| {
            let mut merged = Vec::new();
            for map_out in bucketed.iter() {
                merged.extend(map_out[b].iter().cloned());
            }
            Arc::new(merged)
        },
    )
}

/// Pair-dataset operators, available on any `Dataset<(K, V)>`.
///
/// This trait is sealed: it exists to attach methods, not to be
/// implemented downstream.
pub trait PairOps<K, V>: private::Sealed {
    /// Merges values per key with a commutative, associative function
    /// (Spark's `reduceByKey`). One shuffle, preceded by a map-side
    /// combine (unless disabled via `Config::map_side_combine`) that
    /// caps shuffle volume at one record per key per map partition.
    fn reduce_by_key(&self, f: impl Fn(&V, &V) -> V + Send + Sync + 'static) -> Dataset<(K, V)>;

    /// Groups all values per key (Spark's `groupByKey`). One shuffle.
    fn group_by_key(&self) -> Dataset<(K, Vec<V>)>;

    /// Inner hash join on the key (Spark's `join`). Shuffles both sides.
    fn join<W: Data>(&self, other: &Dataset<(K, W)>) -> Dataset<(K, (V, W))>;

    /// Left outer hash join: every left record appears once per match, or
    /// once with `None` when unmatched. Shuffles both sides.
    fn left_outer_join<W: Data>(&self, other: &Dataset<(K, W)>) -> Dataset<(K, (V, Option<W>))>;

    /// Groups both sides by key (Spark's `cogroup`). Shuffles both sides.
    #[allow(clippy::type_complexity)]
    fn cogroup<W: Data>(&self, other: &Dataset<(K, W)>) -> Dataset<(K, (Vec<V>, Vec<W>))>;

    /// Globally sorts by key via range partitioning: output partitions
    /// are key-ordered and each partition is sorted (Spark's
    /// `sortByKey`). One shuffle.
    fn sort_by_key(&self) -> Dataset<(K, V)>
    where
        K: Ord;

    /// Number of records per key. One shuffle.
    fn count_by_key(&self) -> Dataset<(K, u64)>;

    /// Applies `f` to every value, keeping keys (narrow).
    fn map_values<U: Data>(&self, f: impl Fn(&V) -> U + Send + Sync + 'static) -> Dataset<(K, U)>;

    /// The keys, in partition order (narrow).
    fn keys(&self) -> Dataset<K>;

    /// The values, in partition order (narrow).
    fn values(&self) -> Dataset<V>;

    /// Collects into a `HashMap`, later duplicates of a key winning. This
    /// is the engine's "broadcast" primitive: UPA and the TPC-H queries
    /// build map-side join tables with it.
    fn collect_as_map(&self) -> HashMap<K, V>
    where
        K: Hash + Eq;
}

mod private {
    pub trait Sealed {}
    impl<K, V> Sealed for crate::dataset::Dataset<(K, V)> {}
}

impl<K: Data + Hash + Eq, V: Data> PairOps<K, V> for Dataset<(K, V)> {
    fn reduce_by_key(&self, f: impl Fn(&V, &V) -> V + Send + Sync + 'static) -> Dataset<(K, V)> {
        let ctx = self.ctx().clone();
        let buckets = ctx.shuffle_partitions();
        let f = Arc::new(f);
        // Map-side combine (Spark's combiner): pre-reduce per key inside
        // each map partition, so the shuffle moves at most one record per
        // (map partition, key) instead of every input record. The combine
        // is a narrow per-partition pass, so it fuses with any pending
        // upstream chain and adds no stage of its own.
        let pre = if ctx.map_side_combine() {
            let fc = Arc::clone(&f);
            self.map_partitions(move |part: &[(K, V)]| {
                let mut acc: HashMap<K, V> = HashMap::new();
                for (k, v) in part {
                    match acc.get_mut(k) {
                        Some(slot) => *slot = fc(slot, v),
                        None => {
                            acc.insert(k.clone(), v.clone());
                        }
                    }
                }
                acc.into_iter().collect()
            })
        } else {
            self.clone()
        };
        let shuffled = shuffle_by_key(&ctx, &pre, buckets);
        let parts = ctx.run_tasks(
            "reduce_by_key",
            shuffled,
            move |_i, part: Arc<Vec<(K, V)>>| {
                let mut acc: HashMap<K, V> = HashMap::new();
                for (k, v) in part.iter() {
                    match acc.get_mut(k) {
                        Some(slot) => *slot = f(slot, v),
                        None => {
                            acc.insert(k.clone(), v.clone());
                        }
                    }
                }
                Arc::new(acc.into_iter().collect::<Vec<(K, V)>>())
            },
        );
        Dataset::from_parts(
            ctx,
            parts,
            Lineage::derived("reduce_by_key", Arc::clone(pre.lineage())),
        )
    }

    fn group_by_key(&self) -> Dataset<(K, Vec<V>)> {
        let ctx = self.ctx().clone();
        let buckets = ctx.shuffle_partitions();
        let shuffled = shuffle_by_key(&ctx, self, buckets);
        let parts = ctx.run_tasks(
            "group_by_key",
            shuffled,
            move |_i, part: Arc<Vec<(K, V)>>| {
                let mut acc: HashMap<K, Vec<V>> = HashMap::new();
                for (k, v) in part.iter() {
                    acc.entry(k.clone()).or_default().push(v.clone());
                }
                Arc::new(acc.into_iter().collect::<Vec<(K, Vec<V>)>>())
            },
        );
        Dataset::from_parts(
            ctx,
            parts,
            Lineage::derived("group_by_key", Arc::clone(self.lineage())),
        )
    }

    fn join<W: Data>(&self, other: &Dataset<(K, W)>) -> Dataset<(K, (V, W))> {
        let ctx = self.ctx().clone();
        let buckets = ctx.shuffle_partitions();
        // Both sides hash-partition with the same function, so matching
        // keys land in the same bucket index.
        let left = shuffle_by_key(&ctx, self, buckets);
        let right = shuffle_by_key(&ctx, other, buckets);
        let inputs: Vec<(Bucket<K, V>, Bucket<K, W>)> = left.into_iter().zip(right).collect();
        let parts = ctx.run_tasks(
            "join",
            inputs,
            move |_i, (l, r): (Bucket<K, V>, Bucket<K, W>)| {
                let mut table: HashMap<K, Vec<W>> = HashMap::new();
                for (k, w) in r.iter() {
                    table.entry(k.clone()).or_default().push(w.clone());
                }
                let mut out = Vec::new();
                for (k, v) in l.iter() {
                    if let Some(ws) = table.get(k) {
                        for w in ws {
                            out.push((k.clone(), (v.clone(), w.clone())));
                        }
                    }
                }
                Arc::new(out)
            },
        );
        Dataset::from_parts(
            ctx,
            parts,
            Lineage::derived_multi(
                "join",
                vec![Arc::clone(self.lineage()), Arc::clone(other.lineage())],
            ),
        )
    }

    fn left_outer_join<W: Data>(&self, other: &Dataset<(K, W)>) -> Dataset<(K, (V, Option<W>))> {
        let ctx = self.ctx().clone();
        let buckets = ctx.shuffle_partitions();
        let left = shuffle_by_key(&ctx, self, buckets);
        let right = shuffle_by_key(&ctx, other, buckets);
        let inputs: Vec<(Bucket<K, V>, Bucket<K, W>)> = left.into_iter().zip(right).collect();
        let parts = ctx.run_tasks(
            "left_outer_join",
            inputs,
            move |_i, (l, r): (Bucket<K, V>, Bucket<K, W>)| {
                let mut table: HashMap<K, Vec<W>> = HashMap::new();
                for (k, w) in r.iter() {
                    table.entry(k.clone()).or_default().push(w.clone());
                }
                let mut out = Vec::new();
                for (k, v) in l.iter() {
                    match table.get(k) {
                        Some(ws) => {
                            for w in ws {
                                out.push((k.clone(), (v.clone(), Some(w.clone()))));
                            }
                        }
                        None => out.push((k.clone(), (v.clone(), None))),
                    }
                }
                Arc::new(out)
            },
        );
        Dataset::from_parts(
            ctx,
            parts,
            Lineage::derived_multi(
                "left_outer_join",
                vec![Arc::clone(self.lineage()), Arc::clone(other.lineage())],
            ),
        )
    }

    fn cogroup<W: Data>(&self, other: &Dataset<(K, W)>) -> Dataset<(K, (Vec<V>, Vec<W>))> {
        let ctx = self.ctx().clone();
        let buckets = ctx.shuffle_partitions();
        let left = shuffle_by_key(&ctx, self, buckets);
        let right = shuffle_by_key(&ctx, other, buckets);
        let inputs: Vec<(Bucket<K, V>, Bucket<K, W>)> = left.into_iter().zip(right).collect();
        let parts = ctx.run_tasks(
            "cogroup",
            inputs,
            move |_i, (l, r): (Bucket<K, V>, Bucket<K, W>)| {
                let mut table: HashMap<K, (Vec<V>, Vec<W>)> = HashMap::new();
                for (k, v) in l.iter() {
                    table.entry(k.clone()).or_default().0.push(v.clone());
                }
                for (k, w) in r.iter() {
                    table.entry(k.clone()).or_default().1.push(w.clone());
                }
                Arc::new(table.into_iter().collect::<Vec<_>>())
            },
        );
        Dataset::from_parts(
            ctx,
            parts,
            Lineage::derived_multi(
                "cogroup",
                vec![Arc::clone(self.lineage()), Arc::clone(other.lineage())],
            ),
        )
    }

    fn sort_by_key(&self) -> Dataset<(K, V)>
    where
        K: Ord,
    {
        let ctx = self.ctx().clone();
        let buckets = ctx.shuffle_partitions();
        // Sample up to 32 keys per partition to build range boundaries.
        let sample: Vec<K> = self
            .map_partitions(|part| part.iter().take(32).map(|(k, _)| k.clone()).collect())
            .collect();
        let partitioner = Arc::new(RangePartitioner::from_sample(sample, buckets));
        let shuffled = shuffle_with(&ctx, self, buckets, partitioner);
        let parts = ctx.run_tasks(
            "sort_by_key",
            shuffled,
            move |_i, part: Arc<Vec<(K, V)>>| {
                let mut sorted: Vec<(K, V)> = part.to_vec();
                sorted.sort_by(|a, b| a.0.cmp(&b.0));
                Arc::new(sorted)
            },
        );
        Dataset::from_parts(
            ctx,
            parts,
            Lineage::derived("sort_by_key", Arc::clone(self.lineage())),
        )
    }

    fn count_by_key(&self) -> Dataset<(K, u64)> {
        self.map_values(|_| 1u64).reduce_by_key(|a, b| a + b)
    }

    fn map_values<U: Data>(&self, f: impl Fn(&V) -> U + Send + Sync + 'static) -> Dataset<(K, U)> {
        self.map(move |(k, v)| (k.clone(), f(v)))
    }

    fn keys(&self) -> Dataset<K> {
        self.map(|(k, _)| k.clone())
    }

    fn values(&self) -> Dataset<V> {
        self.map(|(_, v)| v.clone())
    }

    fn collect_as_map(&self) -> HashMap<K, V>
    where
        K: Hash + Eq,
    {
        self.collect().into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;

    fn ctx() -> Context {
        Context::with_threads(4)
    }

    #[test]
    fn reduce_by_key_sums_per_key() {
        let c = ctx();
        let ds = c.parallelize(
            vec![("a", 1), ("b", 10), ("a", 2), ("c", 100), ("b", 20)],
            3,
        );
        let mut out = ds.reduce_by_key(|x, y| x + y).collect();
        out.sort();
        assert_eq!(out, vec![("a", 3), ("b", 30), ("c", 100)]);
    }

    #[test]
    fn reduce_by_key_counts_one_shuffle_of_combined_records() {
        let c = ctx();
        let ds = c.parallelize(vec![(1, 1); 100], 4);
        c.reset_metrics();
        let out = ds.reduce_by_key(|a, b| a + b).collect();
        let m = c.metrics();
        assert_eq!(m.shuffles, 1);
        // Map-side combine collapses each partition's 25 copies of key 1
        // into one record, so only one record per map partition moves.
        assert_eq!(m.shuffle_records, 4);
        assert_eq!(out, vec![(1, 100)]);
    }

    #[test]
    fn reduce_by_key_without_combine_shuffles_every_record() {
        let c = Context::new(crate::Config {
            threads: 4,
            map_side_combine: false,
            ..crate::Config::default()
        });
        let ds = c.parallelize(vec![(1, 1); 100], 4);
        c.reset_metrics();
        let out = ds.reduce_by_key(|a, b| a + b).collect();
        let m = c.metrics();
        assert_eq!(m.shuffles, 1);
        assert_eq!(m.shuffle_records, 100);
        assert_eq!(out, vec![(1, 100)]);
    }

    #[test]
    fn combine_matches_naive_path() {
        let combined = ctx();
        let naive = Context::new(crate::Config {
            threads: 4,
            map_side_combine: false,
            ..crate::Config::default()
        });
        let data: Vec<(u32, i64)> = (0..1000).map(|i| (i % 17, i as i64)).collect();
        let mut a = combined
            .parallelize(data.clone(), 6)
            .reduce_by_key(|x, y| x + y)
            .collect();
        let mut b = naive
            .parallelize(data, 6)
            .reduce_by_key(|x, y| x + y)
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn combine_fuses_with_upstream_narrow_chain() {
        let c = ctx();
        let ds = c.parallelize((0..200u32).collect::<Vec<u32>>(), 4);
        c.reset_metrics();
        let out = ds
            .map(|x| (x % 3, u64::from(*x)))
            .reduce_by_key(|a, b| a + b)
            .collect_as_map();
        let m = c.metrics();
        // map → combine fuse into one stage; the shuffle adds its
        // write/read pair and the reduce side one more.
        assert_eq!(m.stages, 4, "map+combine must not run separate stages");
        assert!(
            m.shuffle_records <= 3 * 4,
            "at most one record per key per map partition, got {}",
            m.shuffle_records
        );
        assert_eq!(out[&0], (0..200u64).filter(|x| x % 3 == 0).sum::<u64>());
    }

    #[test]
    fn group_by_key_collects_all_values() {
        let c = ctx();
        let ds = c.parallelize(vec![(1, "x"), (2, "y"), (1, "z")], 2);
        let grouped = ds.group_by_key().collect_as_map();
        let mut ones = grouped[&1].clone();
        ones.sort();
        assert_eq!(ones, vec!["x", "z"]);
        assert_eq!(grouped[&2], vec!["y"]);
    }

    #[test]
    fn join_matches_nested_loop_reference() {
        let c = ctx();
        let left: Vec<(u32, i64)> = (0..200).map(|i| (i % 10, i as i64)).collect();
        let right: Vec<(u32, char)> = (0..30)
            .map(|i| (i % 15, (b'a' + (i % 26) as u8) as char))
            .collect();
        let l = c.parallelize(left.clone(), 5);
        let r = c.parallelize(right.clone(), 3);
        let mut got = l.join(&r).collect();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut want: Vec<(u32, (i64, char))> = Vec::new();
        for (k1, v) in &left {
            for (k2, w) in &right {
                if k1 == k2 {
                    want.push((*k1, (*v, *w)));
                }
            }
        }
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(got, want);
    }

    #[test]
    fn join_counts_two_shuffles() {
        let c = ctx();
        let l = c.parallelize(vec![(1, 1); 50], 2);
        let r = c.parallelize(vec![(1, 2); 30], 2);
        c.reset_metrics();
        let _ = l.join(&r).collect();
        let m = c.metrics();
        assert_eq!(m.shuffles, 2, "a join shuffles both inputs");
        assert_eq!(m.shuffle_records, 80);
    }

    #[test]
    fn join_with_no_matches_is_empty() {
        let c = ctx();
        let l = c.parallelize(vec![(1, "a")], 1);
        let r = c.parallelize(vec![(2, "b")], 1);
        assert!(l.join(&r).is_empty());
    }

    #[test]
    fn count_by_key_matches_manual() {
        let c = ctx();
        let ds = c.parallelize(vec![("x", ()), ("y", ()), ("x", ()), ("x", ())], 2);
        let counts = ds.count_by_key().collect_as_map();
        assert_eq!(counts["x"], 3);
        assert_eq!(counts["y"], 1);
    }

    #[test]
    fn keys_values_map_values() {
        let c = ctx();
        let ds = c.parallelize(vec![(1, 10), (2, 20)], 1);
        assert_eq!(ds.keys().collect(), vec![1, 2]);
        assert_eq!(ds.values().collect(), vec![10, 20]);
        assert_eq!(ds.map_values(|v| v + 1).collect(), vec![(1, 11), (2, 21)]);
    }

    #[test]
    fn shuffle_is_deterministic() {
        let c = ctx();
        let data: Vec<(u64, u64)> = (0..1000).map(|i| (i % 97, i)).collect();
        let ds = c.parallelize(data, 8);
        let a = shuffle_by_key(&c, &ds, 4);
        let b = shuffle_by_key(&c, &ds, 4);
        for (pa, pb) in a.iter().zip(b.iter()) {
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let c = ctx();
        let data: Vec<(u8, u32)> = (0..500u32).map(|i| ((i % 7) as u8, i)).collect();
        let ds = c.parallelize(data.clone(), 6);
        let shuffled = shuffle_by_key(&c, &ds, 3);
        let mut flat: Vec<(u8, u32)> = shuffled.iter().flat_map(|p| p.iter().cloned()).collect();
        flat.sort();
        let mut want = data;
        want.sort();
        assert_eq!(flat, want);
    }

    #[test]
    fn keys_colocate_in_one_bucket() {
        let c = ctx();
        let data: Vec<(u8, u32)> = (0..100u32).map(|i| ((i % 5) as u8, i)).collect();
        let ds = c.parallelize(data, 4);
        let shuffled = shuffle_by_key(&c, &ds, 3);
        // Every key must appear in exactly one bucket.
        for key in 0u8..5 {
            let holding: usize = shuffled
                .iter()
                .filter(|p| p.iter().any(|(k, _)| *k == key))
                .count();
            assert_eq!(holding, 1, "key {key} split across buckets");
        }
    }

    #[test]
    fn left_outer_join_keeps_unmatched_left() {
        let c = ctx();
        let l = c.parallelize(vec![(1, "a"), (2, "b"), (3, "c")], 2);
        let r = c.parallelize(vec![(1, 10), (1, 11), (3, 30)], 2);
        let mut got = l.left_outer_join(&r).collect();
        got.sort();
        assert_eq!(
            got,
            vec![
                (1, ("a", Some(10))),
                (1, ("a", Some(11))),
                (2, ("b", None)),
                (3, ("c", Some(30))),
            ]
        );
    }

    #[test]
    fn cogroup_collects_both_sides() {
        let c = ctx();
        let l = c.parallelize(vec![(1, "x"), (2, "y"), (1, "z")], 2);
        let r = c.parallelize(vec![(1, 100), (3, 300)], 2);
        let grouped = l.cogroup(&r).collect_as_map();
        let (mut vs, ws) = grouped[&1].clone();
        vs.sort();
        assert_eq!(vs, vec!["x", "z"]);
        assert_eq!(ws, vec![100]);
        assert_eq!(grouped[&2], (vec!["y"], vec![]));
        assert_eq!(grouped[&3], (vec![], vec![300]));
    }

    #[test]
    fn sort_by_key_globally_orders() {
        let c = ctx();
        let data: Vec<(i64, u32)> = (0..2_000u32)
            .map(|i| (((i * 7919) % 997) as i64, i))
            .collect();
        let ds = c.parallelize(data.clone(), 8);
        let sorted = ds.sort_by_key().collect();
        assert_eq!(sorted.len(), data.len());
        // Keys are globally nondecreasing in partition order.
        for w in sorted.windows(2) {
            assert!(w[0].0 <= w[1].0, "not sorted: {:?} then {:?}", w[0], w[1]);
        }
        // Same multiset.
        let mut got = sorted;
        got.sort();
        let mut want = data;
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn sort_by_key_handles_duplicates_and_small_inputs() {
        let c = ctx();
        let ds = c.parallelize(vec![(5, 'a'), (5, 'b'), (1, 'c')], 2);
        let sorted = ds.sort_by_key().collect();
        assert_eq!(sorted[0].0, 1);
        assert_eq!(sorted.len(), 3);
        let empty = c.parallelize(Vec::<(i32, i32)>::new(), 2);
        assert!(empty.sort_by_key().is_empty());
    }
}
