//! Deterministic fault injection.
//!
//! MapReduce operators are written commutatively and associatively *so
//! that* tasks can be re-executed after failures without changing the
//! result (paper §II-C). The engine makes that assumption testable: a
//! [`FaultInjector`] deterministically fails a configurable fraction of
//! task attempts, the scheduler retries them, and the engine's tests assert
//! that results are identical with and without injected faults.

use std::hash::{Hash, Hasher};

/// Decides, deterministically, whether a given task attempt should fail.
///
/// Decisions are pure functions of `(seed, stage, task, attempt)`, so a
/// given configuration always injects the same faults — failures are
/// reproducible, and a retried attempt (higher `attempt` number) gets an
/// independent decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjector {
    probability: f64,
    seed: u64,
}

impl FaultInjector {
    /// Creates an injector failing roughly `probability` of attempts.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is not within `[0, 1)`. (A probability of 1
    /// would fail every retry forever.)
    pub fn new(probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&probability),
            "fault probability must be in [0, 1), got {probability}"
        );
        FaultInjector { probability, seed }
    }

    /// An injector that never fails anything.
    pub fn disabled() -> Self {
        FaultInjector {
            probability: 0.0,
            seed: 0,
        }
    }

    /// The configured failure probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Whether the `attempt`-th run of task `task` in stage `stage_id`
    /// should fail.
    pub fn should_fail(&self, stage_id: u64, task: usize, attempt: u32) -> bool {
        if self.probability == 0.0 {
            return false;
        }
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.seed.hash(&mut hasher);
        stage_id.hash(&mut hasher);
        task.hash(&mut hasher);
        attempt.hash(&mut hasher);
        let h = hasher.finish();
        // Map to [0, 1) with 53-bit precision.
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < self.probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_fails() {
        let f = FaultInjector::disabled();
        for t in 0..100 {
            assert!(!f.should_fail(0, t, 0));
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultInjector::new(0.5, 42);
        let b = FaultInjector::new(0.5, 42);
        for stage in 0..10u64 {
            for task in 0..10 {
                assert_eq!(a.should_fail(stage, task, 0), b.should_fail(stage, task, 0));
            }
        }
    }

    #[test]
    fn failure_rate_is_close_to_probability() {
        let f = FaultInjector::new(0.3, 7);
        let trials = 100_000;
        let failures = (0..trials)
            .filter(|&i| f.should_fail(i as u64 / 1000, i % 1000, 0))
            .count();
        let rate = failures as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn attempts_get_independent_decisions() {
        let f = FaultInjector::new(0.5, 3);
        // With p=0.5, some task that fails on attempt 0 must succeed on a
        // later attempt; find one to confirm attempts are not correlated.
        let mut saw_recovery = false;
        for task in 0..1000 {
            if f.should_fail(1, task, 0) && !f.should_fail(1, task, 1) {
                saw_recovery = true;
                break;
            }
        }
        assert!(saw_recovery);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn probability_one_rejected() {
        let _ = FaultInjector::new(1.0, 0);
    }
}
