//! The partitioned, immutable dataset — the engine's RDD analogue.

use crate::context::Context;

/// Shared handle to a commutative, associative binary reducer.
pub(crate) type ReduceFn<T> = Arc<dyn Fn(&T, &T) -> T + Send + Sync>;

/// Push-based executor for a fused chain of narrow transforms: called once
/// per base partition, it streams every output record into the sink.
pub(crate) type PendingRun<T> = Arc<dyn Fn(usize, &mut dyn FnMut(T)) + Send + Sync>;

/// One narrow transform step applied to a borrowed record: `(partition
/// index, record, sink)`. Emitting zero, one or many records covers
/// `filter`, `map` and `flat_map` respectively.
type StepFn<T, U> = dyn Fn(usize, &T, &mut dyn FnMut(U)) + Send + Sync;

use crate::lineage::Lineage;
use crate::Data;
use std::sync::{Arc, OnceLock};

/// A chain of narrow transforms that has not executed yet. The chain
/// composes per-record closures over a materialised base dataset and runs
/// as a **single** pool stage (named `fused[map→filter→…]`) when the first
/// wide operator or action forces it.
struct Pending<T> {
    /// Records per base partition: drives the scan-cost model and the
    /// `records_processed` counter when the chain runs.
    base_sizes: Arc<Vec<usize>>,
    /// Lineage of the materialised base the chain reads from.
    base_lineage: Arc<Lineage>,
    /// Operator names, base-first.
    ops: Vec<String>,
    run: PendingRun<T>,
}

impl<T> Pending<T> {
    /// Stage/lineage label: the bare operator name for single-op chains,
    /// `fused[a→b→…]` once two or more ops are chained.
    fn label(&self) -> String {
        if self.ops.len() == 1 {
            self.ops[0].clone()
        } else {
            format!("fused[{}]", self.ops.join("→"))
        }
    }
}

/// Shared state of a dataset: either already-materialised partitions or a
/// pending fused chain plus a cache slot filled on first materialisation.
struct Inner<T> {
    num_parts: usize,
    pending: Option<Pending<T>>,
    parts: OnceLock<Arc<Vec<Arc<Vec<T>>>>>,
    len: OnceLock<usize>,
}

/// An immutable, partitioned, in-memory dataset.
///
/// Cloning is cheap (state is shared via `Arc`). Narrow transformations
/// (`map`, `filter`, `flat_map`, `map_with_partition`, `map_partitions`)
/// are **lazy**: consecutive calls fuse into one pending chain that runs
/// as a single parallel stage — with no intermediate materialisation —
/// when the first wide operator or action needs the records. The result
/// is then cached, which doubles as Spark's memory cache: re-using a
/// `Dataset` re-uses its materialised partitions, the effect the paper
/// credits for Figure 4(b)'s flat sample-size scaling.
///
/// ```
/// use dataflow::Context;
/// let ctx = Context::with_threads(2);
/// let ds = ctx.parallelize(vec![1, 2, 3, 4], 2);
/// assert_eq!(ds.filter(|x| x % 2 == 0).collect(), vec![2, 4]);
/// ```
pub struct Dataset<T> {
    ctx: Context,
    inner: Arc<Inner<T>>,
    lineage: Arc<Lineage>,
}

impl<T> Clone for Dataset<T> {
    fn clone(&self) -> Self {
        Dataset {
            ctx: self.ctx.clone(),
            inner: Arc::clone(&self.inner),
            lineage: Arc::clone(&self.lineage),
        }
    }
}

impl<T: Data> std::fmt::Debug for Dataset<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dataset")
            .field("partitions", &self.num_partitions())
            .field("len", &self.inner.len.get().copied())
            .field("op", &self.lineage.op())
            .finish()
    }
}

impl<T: Data> Dataset<T> {
    pub(crate) fn from_parts(
        ctx: Context,
        partitions: Vec<Arc<Vec<T>>>,
        lineage: Arc<Lineage>,
    ) -> Self {
        let parts = Arc::new(partitions);
        let len: usize = parts.iter().map(|p| p.len()).sum();
        Dataset {
            ctx,
            inner: Arc::new(Inner {
                num_parts: parts.len(),
                pending: None,
                parts: OnceLock::from(parts),
                len: OnceLock::from(len),
            }),
            lineage,
        }
    }

    fn from_pending(ctx: Context, pending: Pending<T>) -> Self {
        let lineage = Lineage::derived(pending.label(), Arc::clone(&pending.base_lineage));
        Dataset {
            ctx,
            inner: Arc::new(Inner {
                num_parts: pending.base_sizes.len(),
                pending: Some(pending),
                parts: OnceLock::new(),
                len: OnceLock::new(),
            }),
            lineage,
        }
    }

    /// The pending chain, if this dataset is lazy and not yet forced.
    /// Once forced, the cached partitions are the cheaper base to chain
    /// from, so this returns `None`.
    fn unforced_pending(&self) -> Option<&Pending<T>> {
        match self.inner.pending.as_ref() {
            Some(p) if self.inner.parts.get().is_none() => Some(p),
            _ => None,
        }
    }

    /// Materialises (and caches) the partitions, running the pending
    /// fused chain as one stage if there is one.
    fn forced(&self) -> &Arc<Vec<Arc<Vec<T>>>> {
        self.inner.parts.get_or_init(|| {
            let p = self
                .inner
                .pending
                .as_ref()
                .expect("unmaterialised dataset must hold a pending chain");
            let label = p.label();
            Arc::new(
                self.ctx
                    .run_fused(&label, &p.base_sizes, Arc::clone(&p.run)),
            )
        })
    }

    /// Chains one narrow per-record transform, fusing it with any pending
    /// chain instead of running a stage now.
    fn narrow<U: Data>(&self, op: &str, step: Arc<StepFn<T, U>>) -> Dataset<U> {
        let (run, base_sizes, mut ops, base_lineage) = match self.unforced_pending() {
            Some(p) => {
                let prev = Arc::clone(&p.run);
                let run: PendingRun<U> = Arc::new(move |i, sink| {
                    prev(i, &mut |t: T| step(i, &t, sink));
                });
                (
                    run,
                    Arc::clone(&p.base_sizes),
                    p.ops.clone(),
                    Arc::clone(&p.base_lineage),
                )
            }
            None => {
                let parts = Arc::clone(self.forced());
                let sizes = Arc::new(parts.iter().map(|p| p.len()).collect::<Vec<usize>>());
                let run: PendingRun<U> = Arc::new(move |i, sink| {
                    for t in parts[i].iter() {
                        step(i, t, sink);
                    }
                });
                (run, sizes, Vec::new(), Arc::clone(&self.lineage))
            }
        };
        ops.push(op.to_string());
        Dataset::from_pending(
            self.ctx.clone(),
            Pending {
                base_sizes,
                base_lineage,
                ops,
                run,
            },
        )
    }

    /// The context this dataset belongs to.
    pub fn ctx(&self) -> &Context {
        &self.ctx
    }

    /// Number of partitions (known without forcing a pending chain).
    pub fn num_partitions(&self) -> usize {
        self.inner.num_parts
    }

    /// The underlying partitions (shared, read-only). Forces a pending
    /// chain.
    pub fn partitions(&self) -> &[Arc<Vec<T>>] {
        self.forced()
    }

    /// Total number of records. Computed once — eagerly for materialised
    /// datasets, at first call (forcing the chain) for lazy ones — and
    /// cached thereafter.
    pub fn len(&self) -> usize {
        *self
            .inner
            .len
            .get_or_init(|| self.forced().iter().map(|p| p.len()).sum())
    }

    /// Whether the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The lineage node of this dataset.
    pub fn lineage(&self) -> &Arc<Lineage> {
        &self.lineage
    }

    /// Renders the operator tree that produced this dataset. Fused chains
    /// appear as a single `fused[a→b→…]` node.
    pub fn explain(&self) -> String {
        self.lineage.explain()
    }

    /// Gathers all records into one vector, preserving partition order.
    pub fn collect(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len());
        for p in self.forced().iter() {
            out.extend(p.iter().cloned());
        }
        out
    }

    /// Applies `f` to every record (a narrow stage — Spark's `map`).
    /// Lazy: fuses with adjacent narrow transforms.
    pub fn map<U: Data>(&self, f: impl Fn(&T) -> U + Send + Sync + 'static) -> Dataset<U> {
        self.narrow("map", Arc::new(move |_i, t, sink| sink(f(t))))
    }

    /// Keeps records satisfying `pred`. Lazy: fuses with adjacent narrow
    /// transforms.
    pub fn filter(&self, pred: impl Fn(&T) -> bool + Send + Sync + 'static) -> Dataset<T> {
        self.narrow(
            "filter",
            Arc::new(move |_i, t: &T, sink: &mut dyn FnMut(T)| {
                if pred(t) {
                    sink(t.clone());
                }
            }),
        )
    }

    /// Applies `f` and flattens the results. Lazy: fuses with adjacent
    /// narrow transforms.
    pub fn flat_map<U: Data, I>(&self, f: impl Fn(&T) -> I + Send + Sync + 'static) -> Dataset<U>
    where
        I: IntoIterator<Item = U>,
    {
        self.narrow(
            "flat_map",
            Arc::new(move |_i, t: &T, sink: &mut dyn FnMut(U)| {
                for u in f(t) {
                    sink(u);
                }
            }),
        )
    }

    /// Applies `f` to every record together with the index of the
    /// partition holding it (Spark's `mapPartitionsWithIndex`, per
    /// record). UPA uses this to tag records with the logical dataset
    /// half they belong to. Lazy: fuses with adjacent narrow transforms.
    pub fn map_with_partition<U: Data>(
        &self,
        f: impl Fn(usize, &T) -> U + Send + Sync + 'static,
    ) -> Dataset<U> {
        self.narrow(
            "map_with_partition",
            Arc::new(move |i, t, sink| sink(f(i, t))),
        )
    }

    /// Runs `f` once per partition (Spark's `mapPartitions`). Lazy: fuses
    /// with adjacent narrow transforms (upstream records are buffered
    /// per-partition before `f` sees them, as its slice signature
    /// requires).
    pub fn map_partitions<U: Data>(
        &self,
        f: impl Fn(&[T]) -> Vec<U> + Send + Sync + 'static,
    ) -> Dataset<U> {
        let (run, base_sizes, mut ops, base_lineage) = match self.unforced_pending() {
            Some(p) => {
                let prev = Arc::clone(&p.run);
                let run: PendingRun<U> = Arc::new(move |i, sink| {
                    let mut buf: Vec<T> = Vec::new();
                    prev(i, &mut |t: T| buf.push(t));
                    for u in f(&buf) {
                        sink(u);
                    }
                });
                (
                    run,
                    Arc::clone(&p.base_sizes),
                    p.ops.clone(),
                    Arc::clone(&p.base_lineage),
                )
            }
            None => {
                let parts = Arc::clone(self.forced());
                let sizes = Arc::new(parts.iter().map(|p| p.len()).collect::<Vec<usize>>());
                let run: PendingRun<U> = Arc::new(move |i, sink| {
                    for u in f(&parts[i]) {
                        sink(u);
                    }
                });
                (run, sizes, Vec::new(), Arc::clone(&self.lineage))
            }
        };
        ops.push("map_partitions".to_string());
        Dataset::from_pending(
            self.ctx.clone(),
            Pending {
                base_sizes,
                base_lineage,
                ops,
                run,
            },
        )
    }

    /// Pairs every record with a key (Spark's `keyBy`), enabling the pair
    /// operators in [`crate::pair::PairOps`].
    pub fn key_by<K: Data>(&self, f: impl Fn(&T) -> K + Send + Sync + 'static) -> Dataset<(K, T)> {
        self.map(move |t| (f(t), t.clone()))
    }

    /// Reduces the whole dataset with a **commutative, associative**
    /// function: partitions fold in parallel, then partial results combine.
    /// Returns `None` for an empty dataset.
    ///
    /// Correctness under parallelism, re-partitioning and task retry
    /// requires `f` to be commutative and associative — the exact property
    /// UPA's union-preserving reduce exploits (paper §II-C).
    pub fn reduce(&self, f: impl Fn(&T, &T) -> T + Send + Sync + 'static) -> Option<T> {
        let f: ReduceFn<T> = Arc::new(f);
        let partials = self.reduce_partitions_with(Arc::clone(&f));
        partials.into_iter().flatten().reduce(|a, b| f(&a, &b))
    }

    /// Per-partition reduce (the paper's `ReduceByPar`): returns one
    /// partial result per partition without combining them. UPA uses this
    /// to obtain `f(x1)` and `f(x2)` for RANGE ENFORCER.
    pub fn reduce_partitions(
        &self,
        f: impl Fn(&T, &T) -> T + Send + Sync + 'static,
    ) -> Vec<Option<T>> {
        self.reduce_partitions_with(Arc::new(f))
    }

    fn reduce_partitions_with(&self, f: ReduceFn<T>) -> Vec<Option<T>> {
        let scan_ns = self.ctx.scan_cost_ns();
        self.ctx.run_tasks(
            "reduce",
            self.forced().to_vec(),
            move |_i, part: Arc<Vec<T>>| {
                crate::context::scan_delay(part.len(), scan_ns);
                let mut it = part.iter();
                let first = it.next()?.clone();
                Some(it.fold(first, |acc, t| f(&acc, t)))
            },
        )
    }

    /// General aggregation: fold each partition from `zero` with `seq`,
    /// then combine partials with `comb` (Spark's `aggregate`). `comb`
    /// must be commutative and associative and `zero` its identity.
    pub fn aggregate<A: Data>(
        &self,
        zero: A,
        seq: impl Fn(A, &T) -> A + Send + Sync + 'static,
        comb: impl Fn(A, A) -> A + Send + Sync + 'static,
    ) -> A {
        let seq = Arc::new(seq);
        let z = zero.clone();
        let scan_ns = self.ctx.scan_cost_ns();
        let partials = self.ctx.run_tasks(
            "aggregate",
            self.forced().to_vec(),
            move |_i, part: Arc<Vec<T>>| {
                crate::context::scan_delay(part.len(), scan_ns);
                part.iter().fold(z.clone(), |acc, t| seq(acc, t))
            },
        );
        partials.into_iter().fold(zero, comb)
    }

    /// Number of records, computed as a parallel aggregation.
    pub fn count(&self) -> u64 {
        self.aggregate(0u64, |acc, _| acc + 1, |a, b| a + b)
    }

    /// Concatenates two datasets (partitions of `other` follow `self`'s).
    ///
    /// # Panics
    ///
    /// Panics if the datasets belong to different contexts' pools — union
    /// requires a shared scheduler. (Contexts are compared by identity.)
    pub fn union(&self, other: &Dataset<T>) -> Dataset<T> {
        assert!(
            self.ctx.same_engine(&other.ctx),
            "union requires datasets from the same context"
        );
        let mut parts: Vec<Arc<Vec<T>>> = self.forced().to_vec();
        parts.extend(other.forced().iter().cloned());
        Dataset::from_parts(
            self.ctx.clone(),
            parts,
            Lineage::derived_multi(
                "union",
                vec![Arc::clone(&self.lineage), Arc::clone(&other.lineage)],
            ),
        )
    }

    /// Re-distributes records across `k` partitions, preserving order.
    pub fn repartition(&self, k: usize) -> Dataset<T> {
        let data = self.collect();
        let ds = self.ctx.parallelize(data, k);
        Dataset::from_parts(
            self.ctx.clone(),
            ds.partitions().to_vec(),
            Lineage::derived(format!("repartition[{k}]"), Arc::clone(&self.lineage)),
        )
    }

    /// The first `n` records in partition order (Spark's `take`).
    pub fn take(&self, n: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(n.min(self.len()));
        for p in self.forced().iter() {
            for t in p.iter() {
                if out.len() == n {
                    return out;
                }
                out.push(t.clone());
            }
        }
        out
    }

    /// The `k` largest records under `cmp` (Spark's `top`): each
    /// partition computes a partial top-k in parallel, partials merge on
    /// the driver. Result is sorted descending.
    pub fn top_k_by(
        &self,
        k: usize,
        cmp: impl Fn(&T, &T) -> std::cmp::Ordering + Send + Sync + 'static,
    ) -> Vec<T> {
        if k == 0 {
            return Vec::new();
        }
        let cmp = Arc::new(cmp);
        let cmp_task = Arc::clone(&cmp);
        let partials: Vec<Vec<T>> = self.ctx.run_tasks(
            "top_k",
            self.forced().to_vec(),
            move |_i, part: Arc<Vec<T>>| {
                let mut local: Vec<T> = part.to_vec();
                local.sort_by(|a, b| cmp_task(b, a));
                local.truncate(k);
                local
            },
        );
        let mut merged: Vec<T> = partials.into_iter().flatten().collect();
        merged.sort_by(|a, b| cmp(b, a));
        merged.truncate(k);
        merged
    }

    /// The maximum record under `cmp`, if any.
    pub fn max_by(
        &self,
        cmp: impl Fn(&T, &T) -> std::cmp::Ordering + Send + Sync + 'static,
    ) -> Option<T> {
        self.reduce(move |a, b| {
            if cmp(a, b) == std::cmp::Ordering::Less {
                b.clone()
            } else {
                a.clone()
            }
        })
    }

    /// A Bernoulli sample keeping each record with probability
    /// `fraction`, decided deterministically from `seed` and the record's
    /// position (so the same call yields the same sample).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn sample_fraction(&self, fraction: f64, seed: u64) -> Dataset<T> {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        let threshold = (fraction * (1u64 << 53) as f64) as u64;
        let parts = self.ctx.run_stage(
            "sample",
            self.forced(),
            Arc::new(move |p, part: &[T]| {
                part.iter()
                    .enumerate()
                    .filter(|(offset, _)| {
                        use std::hash::{Hash, Hasher};
                        let mut h = std::collections::hash_map::DefaultHasher::new();
                        seed.hash(&mut h);
                        p.hash(&mut h);
                        offset.hash(&mut h);
                        (h.finish() >> 11) < threshold
                    })
                    .map(|(_, t)| t.clone())
                    .collect()
            }),
        );
        Dataset::from_parts(
            self.ctx.clone(),
            parts,
            Lineage::derived(format!("sample[{fraction}]"), Arc::clone(&self.lineage)),
        )
    }

    /// Pairs every record with its global index (Spark's
    /// `zipWithIndex`).
    pub fn zip_with_index(&self) -> Dataset<(usize, T)> {
        let mut offsets = Vec::with_capacity(self.num_partitions());
        let mut base = 0usize;
        for p in self.forced().iter() {
            offsets.push(base);
            base += p.len();
        }
        let offsets = Arc::new(offsets);
        let parts = self.ctx.run_stage(
            "zip_with_index",
            self.forced(),
            Arc::new(move |p, part: &[T]| {
                part.iter()
                    .enumerate()
                    .map(|(i, t)| (offsets[p] + i, t.clone()))
                    .collect()
            }),
        );
        Dataset::from_parts(
            self.ctx.clone(),
            parts,
            Lineage::derived("zip_with_index", Arc::clone(&self.lineage)),
        )
    }

    /// Splits off the records at the given **sorted, distinct** global
    /// indices: returns the picked records and the dataset of the rest.
    /// This implements UPA's Partition-and-Sample split into `S` (sampled)
    /// and `S′` (remainder) while preserving the partition structure of the
    /// remainder.
    ///
    /// # Panics
    ///
    /// Panics if `sorted_indices` is not strictly increasing or contains an
    /// out-of-range index.
    pub fn split_indices(&self, sorted_indices: &[usize]) -> (Vec<T>, Dataset<T>) {
        assert!(
            sorted_indices.windows(2).all(|w| w[0] < w[1]),
            "indices must be strictly increasing"
        );
        if let Some(&last) = sorted_indices.last() {
            assert!(last < self.len(), "index {last} out of range");
        }
        let mut picked = Vec::with_capacity(sorted_indices.len());
        let mut rest_parts: Vec<Arc<Vec<T>>> = Vec::with_capacity(self.num_partitions());
        let mut cursor = 0; // position in sorted_indices
        let mut base = 0; // global index of the first record in this partition
        for part in self.forced().iter() {
            let end = base + part.len();
            // Indices that fall inside this partition.
            let start_cursor = cursor;
            while cursor < sorted_indices.len() && sorted_indices[cursor] < end {
                cursor += 1;
            }
            let local: &[usize] = &sorted_indices[start_cursor..cursor];
            if local.is_empty() {
                rest_parts.push(Arc::clone(part));
            } else {
                let mut rest = Vec::with_capacity(part.len() - local.len());
                let mut li = 0;
                for (offset, record) in part.iter().enumerate() {
                    if li < local.len() && local[li] - base == offset {
                        picked.push(record.clone());
                        li += 1;
                    } else {
                        rest.push(record.clone());
                    }
                }
                rest_parts.push(Arc::new(rest));
            }
            base = end;
        }
        let rest = Dataset::from_parts(
            self.ctx.clone(),
            rest_parts,
            Lineage::derived("split_indices", Arc::clone(&self.lineage)),
        );
        (picked, rest)
    }
}

impl<T: Data + std::hash::Hash + Eq> Dataset<T> {
    /// Removes duplicate records (Spark's `distinct`). One shuffle: equal
    /// records co-locate by hash, then each bucket deduplicates.
    pub fn distinct(&self) -> Dataset<T> {
        use crate::pair::PairOps;
        self.map(|t| (t.clone(), ()))
            .reduce_by_key(|_, _| ())
            .keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        Context::with_threads(4)
    }

    #[test]
    fn map_filter_flat_map_chain() {
        let ds = ctx().parallelize((1..=10).collect::<Vec<i64>>(), 3);
        let out = ds
            .map(|x| x * 10)
            .filter(|x| x % 20 == 0)
            .flat_map(|x| vec![*x, *x + 1])
            .collect();
        assert_eq!(out, vec![20, 21, 40, 41, 60, 61, 80, 81, 100, 101]);
    }

    #[test]
    fn fused_chain_runs_as_single_stage() {
        let c = ctx();
        let ds = c.parallelize((0..100).collect::<Vec<i64>>(), 4);
        c.reset_metrics();
        let chained = ds.map(|x| x + 1).filter(|x| x % 2 == 0).map(|x| x * 10);
        // Nothing has run yet: narrow transforms are lazy.
        assert_eq!(c.metrics().stages, 0);
        let out = chained.collect();
        let m = c.metrics();
        assert_eq!(m.stages, 1, "map→filter→map must fuse into one stage");
        assert_eq!(m.tasks, 4);
        assert_eq!(
            m.records_processed, 100,
            "only base records are scanned once"
        );
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn forced_chain_is_cached_not_rerun() {
        let c = ctx();
        let ds = c.parallelize((0..100).collect::<Vec<i64>>(), 4);
        let mapped = ds.map(|x| x + 1).filter(|x| x % 2 == 0);
        c.reset_metrics();
        let a = mapped.collect();
        let stages_after_first = c.metrics().stages;
        let b = mapped.collect();
        assert_eq!(a, b);
        assert_eq!(
            c.metrics().stages,
            stages_after_first,
            "second collect must reuse the cached materialisation"
        );
        assert_eq!(mapped.len(), 50);
        assert_eq!(c.metrics().stages, stages_after_first);
    }

    #[test]
    fn map_partitions_fuses_with_record_ops() {
        let c = ctx();
        let ds = c.parallelize((0..40).collect::<Vec<i64>>(), 4);
        c.reset_metrics();
        let out = ds
            .map(|x| x * 2)
            .map_partitions(|part| vec![part.iter().sum::<i64>()])
            .collect();
        let m = c.metrics();
        assert_eq!(m.stages, 1, "map→map_partitions must fuse into one stage");
        assert_eq!(out.len(), 4);
        assert_eq!(out.iter().sum::<i64>(), (0..40).map(|x| x * 2).sum::<i64>());
    }

    #[test]
    fn reduce_matches_sequential_fold() {
        let data: Vec<i64> = (1..=1000).collect();
        let ds = ctx().parallelize(data.clone(), 7);
        assert_eq!(ds.reduce(|a, b| a + b), Some(data.iter().sum()));
    }

    #[test]
    fn reduce_empty_is_none() {
        let ds = ctx().parallelize(Vec::<i64>::new(), 4);
        assert_eq!(ds.reduce(|a, b| a + b), None);
    }

    #[test]
    fn reduce_single_element() {
        let ds = ctx().parallelize(vec![42i64], 4);
        assert_eq!(ds.reduce(|a, b| a + b), Some(42));
    }

    #[test]
    fn reduce_partitions_returns_one_partial_per_partition() {
        let ds = ctx().parallelize(vec![1, 2, 3, 4, 5, 6], 3);
        let partials = ds.reduce_partitions(|a, b| a + b);
        assert_eq!(partials.len(), 3);
        assert_eq!(partials.into_iter().map(|p| p.unwrap()).sum::<i32>(), 21);
    }

    #[test]
    fn aggregate_computes_mean_components() {
        let ds = ctx().parallelize((1..=100).map(|x| x as f64).collect::<Vec<f64>>(), 5);
        let (sum, n) = ds.aggregate(
            (0.0, 0u64),
            |(s, n), x| (s + x, n + 1),
            |(s1, n1), (s2, n2)| (s1 + s2, n1 + n2),
        );
        assert_eq!(n, 100);
        assert!((sum - 5050.0).abs() < 1e-9);
    }

    #[test]
    fn count_matches_len() {
        let ds = ctx().parallelize((0..123).collect::<Vec<i32>>(), 4);
        assert_eq!(ds.count(), 123);
        assert_eq!(ds.len(), 123);
    }

    #[test]
    fn union_concatenates() {
        let c = ctx();
        let a = c.parallelize(vec![1, 2], 1);
        let b = c.parallelize(vec![3, 4], 2);
        let u = a.union(&b);
        assert_eq!(u.collect(), vec![1, 2, 3, 4]);
        assert_eq!(u.num_partitions(), a.num_partitions() + b.num_partitions());
    }

    #[test]
    fn repartition_preserves_content() {
        let ds = ctx().parallelize((0..50).collect::<Vec<i32>>(), 2);
        let re = ds.repartition(9);
        assert_eq!(re.collect(), (0..50).collect::<Vec<_>>());
        assert!(re.num_partitions() <= 9);
    }

    #[test]
    fn key_by_builds_pairs() {
        let ds = ctx().parallelize(vec![10, 21, 32], 2);
        let pairs = ds.key_by(|x| x % 10).collect();
        assert_eq!(pairs, vec![(0, 10), (1, 21), (2, 32)]);
    }

    #[test]
    fn split_indices_partitions_the_data() {
        let ds = ctx().parallelize((0..20).collect::<Vec<i32>>(), 4);
        let (picked, rest) = ds.split_indices(&[0, 5, 6, 19]);
        assert_eq!(picked, vec![0, 5, 6, 19]);
        let mut remaining = rest.collect();
        remaining.sort_unstable();
        let expected: Vec<i32> = (0..20).filter(|x| ![0, 5, 6, 19].contains(x)).collect();
        assert_eq!(remaining, expected);
        // Partition structure of the remainder is preserved.
        assert_eq!(rest.num_partitions(), 4);
    }

    #[test]
    fn split_indices_empty_pick() {
        let ds = ctx().parallelize(vec![1, 2, 3], 2);
        let (picked, rest) = ds.split_indices(&[]);
        assert!(picked.is_empty());
        assert_eq!(rest.collect(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn split_indices_rejects_unsorted() {
        let ds = ctx().parallelize(vec![1, 2, 3], 1);
        let _ = ds.split_indices(&[2, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn split_indices_rejects_out_of_range() {
        let ds = ctx().parallelize(vec![1, 2, 3], 1);
        let _ = ds.split_indices(&[5]);
    }

    #[test]
    fn map_with_partition_sees_partition_index() {
        let ds = ctx().parallelize((0..12).collect::<Vec<i32>>(), 3);
        let tagged = ds.map_with_partition(|p, x| (p, *x)).collect();
        assert_eq!(tagged.len(), 12);
        // Records 0..4 are in partition 0, 4..8 in 1, 8..12 in 2.
        for (p, x) in tagged {
            assert_eq!(p, (x / 4) as usize);
        }
    }

    #[test]
    fn explain_shows_fused_operator_chain() {
        let ds = ctx()
            .parallelize(vec![1], 1)
            .map(|x| x + 1)
            .filter(|_| true);
        let plan = ds.explain();
        assert!(plan.starts_with("fused[map→filter]"), "plan was: {plan}");
        assert!(plan.contains("parallelize"));
        // A single narrow op keeps its plain name.
        let single = ctx().parallelize(vec![1], 1).map(|x| x + 1);
        assert!(single.explain().starts_with("map"));
    }

    #[test]
    fn datasets_are_cheap_to_clone_and_share_partitions() {
        let ds = ctx().parallelize((0..1000).collect::<Vec<i32>>(), 4);
        let clone = ds.clone();
        assert!(Arc::ptr_eq(&ds.partitions()[0], &clone.partitions()[0]));
    }

    #[test]
    fn take_returns_prefix() {
        let ds = ctx().parallelize((0..20).collect::<Vec<i32>>(), 4);
        assert_eq!(ds.take(5), vec![0, 1, 2, 3, 4]);
        assert_eq!(ds.take(0), Vec::<i32>::new());
        assert_eq!(ds.take(100).len(), 20);
    }

    #[test]
    fn top_k_matches_sorted_suffix() {
        let data: Vec<i64> = (0..500).map(|i| (i * 37) % 251).collect();
        let ds = ctx().parallelize(data.clone(), 6);
        let top = ds.top_k_by(10, |a, b| a.cmp(b));
        let mut want = data;
        want.sort_unstable_by(|a, b| b.cmp(a));
        want.truncate(10);
        assert_eq!(top, want);
    }

    #[test]
    fn max_by_finds_max() {
        let ds = ctx().parallelize(vec![3, 9, 1, 7], 2);
        assert_eq!(ds.max_by(|a, b| a.cmp(b)), Some(9));
        let empty = ctx().parallelize(Vec::<i32>::new(), 2);
        assert_eq!(empty.max_by(|a, b| a.cmp(b)), None);
    }

    #[test]
    fn sample_fraction_is_deterministic_and_proportional() {
        let ds = ctx().parallelize((0..10_000).collect::<Vec<i32>>(), 8);
        let a = ds.sample_fraction(0.3, 42).collect();
        let b = ds.sample_fraction(0.3, 42).collect();
        assert_eq!(a, b, "same seed, same sample");
        let frac = a.len() as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "got fraction {frac}");
        let c = ds.sample_fraction(0.3, 43).collect();
        assert_ne!(a, c, "different seed, different sample");
        assert!(ds.sample_fraction(0.0, 1).is_empty());
        assert_eq!(ds.sample_fraction(1.0, 1).len(), 10_000);
    }

    #[test]
    fn zip_with_index_is_global_and_ordered() {
        let ds = ctx().parallelize((100..120).collect::<Vec<i32>>(), 3);
        let indexed = ds.zip_with_index().collect();
        for (i, (idx, v)) in indexed.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*v, 100 + i as i32);
        }
    }

    #[test]
    fn distinct_removes_duplicates() {
        let ds = ctx().parallelize(vec![1, 2, 2, 3, 1, 3, 3], 3);
        let mut got = ds.distinct().collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
    }
}
