//! Execution context: configuration, thread pool, metrics and the stage
//! scheduler with fault-injected retry.

use crate::dataset::Dataset;

/// Shared handle to a per-partition stage function.
pub(crate) type StageFn<T, U> = Arc<dyn Fn(usize, &[T]) -> Vec<U> + Send + Sync>;
use crate::fault::FaultInjector;
use crate::lineage::Lineage;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::pool::ThreadPool;
use crate::Data;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Worker threads in the shared pool.
    pub threads: usize,
    /// Default number of partitions for [`Context::parallelize_default`].
    pub default_partitions: usize,
    /// Number of reduce-side buckets used by shuffles.
    pub shuffle_partitions: usize,
    /// Fault injection for task attempts.
    pub fault: FaultInjector,
    /// Maximum retries per task before the job is aborted.
    pub max_task_retries: u32,
    /// Simulated per-record scan cost in nanoseconds, charged by every
    /// stage that touches records (map family, reduces, shuffle writes).
    ///
    /// The paper's vanilla-Spark baseline reads 114–133 GB from disk, so
    /// its per-record cost is I/O-dominated; this in-memory engine has no
    /// I/O at all, which would make "overhead relative to vanilla"
    /// meaningless for trivial queries. Setting a scan cost restores the
    /// paper's cost model: both vanilla and UPA pay it proportionally to
    /// the records they touch. Zero (the default) disables it.
    pub scan_cost_ns: u64,
    /// Whether `reduce_by_key`/`count_by_key` pre-reduce inside each map
    /// partition before shuffling (Spark's map-side combine). On by
    /// default; turning it off restores the naive every-record shuffle,
    /// which the equivalence tests use as a reference.
    pub map_side_combine: bool,
}

/// Busy-spins for roughly `records × ns` nanoseconds (one ALU-chained
/// iteration per nanosecond), simulating scan cost inside a task.
pub(crate) fn scan_delay(records: usize, ns: u64) {
    if ns == 0 || records == 0 {
        return;
    }
    let iters = records as u64 * ns;
    let mut x = 0u64;
    for i in 0..iters {
        x = x.wrapping_add(i ^ (x >> 3));
    }
    std::hint::black_box(x);
}

impl Default for Config {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Config {
            threads,
            default_partitions: threads,
            shuffle_partitions: threads,
            fault: FaultInjector::disabled(),
            max_task_retries: 4,
            scan_cost_ns: 0,
            map_side_combine: true,
        }
    }
}

struct Inner {
    pool: ThreadPool,
    metrics: Metrics,
    config: Config,
    stage_counter: AtomicU64,
}

/// Handle to the engine. Cheap to clone; all clones share the pool and the
/// metrics registry (like a `SparkContext`).
#[derive(Clone)]
pub struct Context {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("threads", &self.inner.config.threads)
            .field(
                "stages_run",
                &self.inner.stage_counter.load(Ordering::Relaxed),
            )
            .finish()
    }
}

impl Default for Context {
    fn default() -> Self {
        Context::new(Config::default())
    }
}

impl Context {
    /// Creates a context with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `threads`, `default_partitions` or `shuffle_partitions`
    /// is zero.
    pub fn new(config: Config) -> Self {
        assert!(config.threads > 0, "config.threads must be positive");
        assert!(
            config.default_partitions > 0,
            "config.default_partitions must be positive"
        );
        assert!(
            config.shuffle_partitions > 0,
            "config.shuffle_partitions must be positive"
        );
        Context {
            inner: Arc::new(Inner {
                pool: ThreadPool::new(config.threads),
                metrics: Metrics::new(),
                config,
                stage_counter: AtomicU64::new(0),
            }),
        }
    }

    /// Creates a context with `threads` workers and default settings.
    pub fn with_threads(threads: usize) -> Self {
        Context::new(Config {
            threads,
            default_partitions: threads,
            shuffle_partitions: threads,
            ..Config::default()
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.inner.config
    }

    /// Snapshot of the engine counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// Resets the engine counters (benchmark harness helper).
    pub fn reset_metrics(&self) {
        self.inner.metrics.reset();
    }

    /// Cumulative wall-clock nanoseconds per stage name.
    pub fn stage_times(&self) -> std::collections::HashMap<String, u64> {
        self.inner.metrics.stage_times()
    }

    /// Fraction of recorded stage time spent in shuffle-related stages
    /// (the paper's §VI-D breakdown).
    pub fn shuffle_time_share(&self) -> f64 {
        self.inner.metrics.shuffle_time_share()
    }

    /// Distributes `data` over `partitions` partitions, preserving order
    /// (record `i` lands in partition `i * partitions / len`).
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    pub fn parallelize<T: Data>(&self, data: Vec<T>, partitions: usize) -> Dataset<T> {
        assert!(partitions > 0, "partitions must be positive");
        let len = data.len();
        let mut parts: Vec<Arc<Vec<T>>> = Vec::with_capacity(partitions);
        if len == 0 {
            parts.push(Arc::new(Vec::new()));
        } else {
            let chunk = len.div_ceil(partitions);
            let mut it = data.into_iter();
            loop {
                let slab: Vec<T> = it.by_ref().take(chunk).collect();
                if slab.is_empty() {
                    break;
                }
                parts.push(Arc::new(slab));
            }
        }
        Dataset::from_parts(
            self.clone(),
            parts,
            Lineage::source(format!("parallelize[{partitions}]")),
        )
    }

    /// Distributes `data` over the configured default partition count.
    pub fn parallelize_default<T: Data>(&self, data: Vec<T>) -> Dataset<T> {
        self.parallelize(data, self.inner.config.default_partitions)
    }

    /// Runs one narrow stage: `f(partition_index, partition) -> partition`.
    ///
    /// Task attempts go through the fault injector; a failed attempt is
    /// retried (a new attempt number gives an independent decision) up to
    /// `max_task_retries` times.
    ///
    /// # Panics
    ///
    /// Panics with the stage name if a task exhausts its retries.
    pub(crate) fn run_stage<T: Data, U: Data>(
        &self,
        name: &str,
        parts: &[Arc<Vec<T>>],
        f: StageFn<T, U>,
    ) -> Vec<Arc<Vec<U>>> {
        let records: u64 = parts.iter().map(|p| p.len() as u64).sum();
        self.inner.metrics.record_processed(records);
        let scan_ns = self.inner.config.scan_cost_ns;
        self.run_tasks(name, parts.to_vec(), move |i, part: Arc<Vec<T>>| {
            scan_delay(part.len(), scan_ns);
            Arc::new(f(i, &part))
        })
    }

    /// Runs a fused chain of narrow transforms as one stage: the chain's
    /// push-based closure streams base partition `i` through every fused
    /// op into a freshly collected output partition. Metrics charge only
    /// the base records — the whole point of fusion is that intermediate
    /// results are never materialised or re-scanned.
    pub(crate) fn run_fused<T: Data>(
        &self,
        name: &str,
        base_sizes: &[usize],
        run: crate::dataset::PendingRun<T>,
    ) -> Vec<Arc<Vec<T>>> {
        let records: u64 = base_sizes.iter().map(|&n| n as u64).sum();
        self.inner.metrics.record_processed(records);
        let scan_ns = self.inner.config.scan_cost_ns;
        let sizes: Arc<Vec<usize>> = Arc::new(base_sizes.to_vec());
        self.run_tasks(name, (0..sizes.len()).collect(), move |_i, p: usize| {
            scan_delay(sizes[p], scan_ns);
            let mut out: Vec<T> = Vec::new();
            run(p, &mut |t| out.push(t));
            Arc::new(out)
        })
    }

    /// The configured simulated scan cost (ns per record).
    pub(crate) fn scan_cost_ns(&self) -> u64 {
        self.inner.config.scan_cost_ns
    }

    /// Whether map-side combining is enabled for keyed reductions.
    pub(crate) fn map_side_combine(&self) -> bool {
        self.inner.config.map_side_combine
    }

    /// Runs one stage of arbitrary tasks with retry; the engine's core
    /// scheduling entry point. Returns outputs in input order.
    pub(crate) fn run_tasks<I, O, F>(&self, name: &str, inputs: Vec<I>, f: F) -> Vec<O>
    where
        I: Clone + Send + 'static,
        O: Send + 'static,
        F: Fn(usize, I) -> O + Send + Sync + 'static,
    {
        let stage_id = self.inner.stage_counter.fetch_add(1, Ordering::Relaxed);
        self.inner.metrics.record_stage(inputs.len() as u64);
        let stage_start = std::time::Instant::now();
        let fault = self.inner.config.fault;
        let max_retries = self.inner.config.max_task_retries;
        let metrics = Arc::clone(&self.inner);
        let name = name.to_string();
        let name2 = name.clone();
        let task = Arc::new(move |i: usize, input: I| {
            let mut attempt: u32 = 0;
            loop {
                if !fault.should_fail(stage_id, i, attempt) {
                    return f(i, input);
                }
                metrics.metrics.record_retry();
                attempt += 1;
                if attempt > max_retries {
                    panic!(
                        "{}",
                        crate::DataflowError::TaskFailed {
                            stage: name.clone(),
                            task: i,
                        }
                    );
                }
            }
        });
        let outs = self.inner.pool.map_ordered(inputs, task);
        self.inner
            .metrics
            .record_stage_time(&name2, stage_start.elapsed().as_nanos() as u64);
        outs
    }

    /// Runs `f` over `inputs` on the shared worker pool and returns the
    /// outputs in input order, **without** recording a stage or touching
    /// any metrics counter.
    ///
    /// This is driver-side helper parallelism — e.g. UPA's phase-4
    /// neighbour finalizations and per-component MLE fits — not an engine
    /// stage: the observability counters keep meaning "work the dataflow
    /// graph ran", so a caller that only uses `par_map` still reports
    /// zero stages and zero shuffles.
    pub fn par_map<I, O, F>(&self, inputs: Vec<I>, f: F) -> Vec<O>
    where
        I: Send + 'static,
        O: Send + 'static,
        F: Fn(usize, I) -> O + Send + Sync + 'static,
    {
        self.inner.pool.map_ordered(inputs, Arc::new(f))
    }

    /// Whether two handles share the same engine (pool + metrics).
    pub(crate) fn same_engine(&self, other: &Context) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    pub(crate) fn record_shuffle(&self, records: u64, bytes: u64) {
        self.inner.metrics.record_shuffle(records, bytes);
    }

    /// Charges `records` to the processed-records counter for work done
    /// outside [`Context::run_stage`] — the columnar kernels account
    /// their scans through this.
    pub(crate) fn record_processed_public(&self, records: u64) {
        self.inner.metrics.record_processed(records);
    }

    /// Records a logical record exchange performed outside the row
    /// shuffle machinery. The columnar reduce combines per-slab
    /// partials driver-side instead of routing them through
    /// `shuffle_by_key`, but it is still the same exchange the paper
    /// counts — this keeps the shuffle counters meaningful across both
    /// paths.
    pub fn record_logical_shuffle(&self, records: u64, bytes: u64) {
        self.inner.metrics.record_shuffle(records, bytes);
    }

    /// Number of reduce-side buckets shuffles use.
    pub(crate) fn shuffle_partitions(&self) -> usize {
        self.inner.config.shuffle_partitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_runs_on_pool_without_metrics() {
        let ctx = Context::with_threads(4);
        let before = ctx.metrics();
        let out = ctx.par_map((0..32).collect::<Vec<u64>>(), |_i, x| x * 2);
        assert_eq!(out, (0..32).map(|x| x * 2).collect::<Vec<u64>>());
        let delta = ctx.metrics().since(&before);
        assert_eq!(delta.stages, 0, "par_map must not count as a stage");
        assert_eq!(delta.tasks, 0);
        assert_eq!(delta.records_processed, 0);
    }

    #[test]
    fn parallelize_balances_partitions() {
        let ctx = Context::with_threads(4);
        let ds = ctx.parallelize((0..10).collect::<Vec<i32>>(), 3);
        assert_eq!(ds.num_partitions(), 3);
        assert_eq!(ds.len(), 10);
        assert_eq!(ds.collect(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn parallelize_empty_dataset() {
        let ctx = Context::with_threads(2);
        let ds = ctx.parallelize(Vec::<i32>::new(), 4);
        assert_eq!(ds.len(), 0);
        assert!(ds.is_empty());
        assert_eq!(ds.collect(), Vec::<i32>::new());
    }

    #[test]
    fn parallelize_more_partitions_than_records() {
        let ctx = Context::with_threads(2);
        let ds = ctx.parallelize(vec![1, 2], 8);
        assert_eq!(ds.collect(), vec![1, 2]);
        assert!(ds.num_partitions() <= 8);
    }

    #[test]
    #[should_panic(expected = "partitions must be positive")]
    fn zero_partitions_rejected() {
        let ctx = Context::with_threads(1);
        let _ = ctx.parallelize(vec![1], 0);
    }

    #[test]
    fn metrics_track_stages() {
        let ctx = Context::with_threads(2);
        let ds = ctx.parallelize((0..100).collect::<Vec<i32>>(), 4);
        ctx.reset_metrics();
        let _ = ds.map(|x| x + 1).collect();
        let m = ctx.metrics();
        assert_eq!(m.stages, 1);
        assert_eq!(m.tasks, 4);
        assert_eq!(m.records_processed, 100);
    }

    #[test]
    fn scan_cost_slows_stages_proportionally() {
        let data: Vec<i64> = (0..200_000).collect();
        let fast = Context::with_threads(2);
        let slow = Context::new(Config {
            threads: 2,
            scan_cost_ns: 500,
            ..Config::default()
        });
        let t0 = std::time::Instant::now();
        let a = fast.parallelize(data.clone(), 4).map(|x| x + 1).count();
        let fast_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = std::time::Instant::now();
        let b = slow.parallelize(data, 4).map(|x| x + 1).count();
        let slow_ms = t1.elapsed().as_secs_f64() * 1e3;
        assert_eq!(a, b, "scan cost must not change results");
        // 200k records × 500ns over two stages ≈ 100ms of injected work;
        // even with scheduling noise the slow run must clearly exceed the
        // fast one.
        assert!(
            slow_ms > fast_ms * 2.0,
            "scan cost had no effect ({fast_ms:.2}ms vs {slow_ms:.2}ms)"
        );
    }

    #[test]
    fn faults_are_retried_and_results_unchanged() {
        let mut config = Config {
            threads: 4,
            fault: FaultInjector::new(0.4, 99),
            max_task_retries: 16,
            ..Config::default()
        };
        config.default_partitions = 8;
        let faulty = Context::new(config);
        let clean = Context::with_threads(4);
        let data: Vec<i64> = (0..10_000).collect();
        let a = faulty
            .parallelize(data.clone(), 8)
            .map(|x| x * 3)
            .reduce(|a, b| a + b)
            .unwrap();
        let b = clean
            .parallelize(data, 8)
            .map(|x| x * 3)
            .reduce(|a, b| a + b)
            .unwrap();
        assert_eq!(a, b, "fault-injected run must match clean run");
        assert!(
            faulty.metrics().task_retries > 0,
            "expected some injected faults"
        );
    }

    #[test]
    fn exhausted_retries_abort_with_stage_name() {
        let config = Config {
            threads: 2,
            fault: FaultInjector::new(0.95, 1),
            max_task_retries: 0,
            ..Config::default()
        };
        let ctx = Context::new(config);
        let ds = ctx.parallelize((0..64).collect::<Vec<i32>>(), 16);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ds.map(|x| x + 1).collect()));
        assert!(result.is_err(), "95% failure with zero retries must abort");
    }
}
