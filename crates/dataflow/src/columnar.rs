//! Columnar zero-copy datasets: chunked `f64` column buffers handed
//! over from the store without per-record boxing, plus chunk-at-a-time
//! kernels for the narrow ops the UPA prepare pipeline needs.
//!
//! A [`ColumnarBuf`] is a column split into immutable, `Arc`-shared
//! chunks (the store's on-disk chunk layout, kept as-is in memory).
//! A [`ColumnarDataset`] binds a buffer to a [`Context`] and runs
//! kernels as real engine stages — one task per chunk, streaming tight
//! loops over contiguous slices — so stage/task/record counters, stage
//! timings and the simulated scan cost behave exactly as they do for
//! row datasets.
//!
//! Chunk statistics ([`ChunkStats`]: min/max over non-NaN values, value
//! count, NaN count) ride along from the store manifest and feed
//! predicate pushdown: a [`RangePredicate`] can discard whole chunks by
//! min/max before any record is touched. Pruning is sound because a NaN
//! never satisfies a range comparison, so the non-NaN min/max bound
//! every record that could match.

use crate::context::scan_delay;
use crate::dataset::Dataset;
use crate::lineage::Lineage;
use crate::Context;
use std::sync::Arc;

/// Per-chunk value statistics, computed at ingest and persisted in the
/// store manifest (v2).
///
/// `min`/`max` cover **non-NaN** values only; an empty or all-NaN chunk
/// has the empty range `min = +inf, max = -inf`. NaNs are counted
/// separately so pruning and diagnostics can reason about them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkStats {
    /// Smallest non-NaN value (`+inf` when none).
    pub min: f64,
    /// Largest non-NaN value (`-inf` when none).
    pub max: f64,
    /// Total values in the chunk (NaNs included).
    pub count: u64,
    /// How many of them are NaN.
    pub nan_count: u64,
}

impl ChunkStats {
    /// Scans `values` once, accumulating min/max over non-NaN entries.
    #[must_use]
    pub fn compute(values: &[f64]) -> ChunkStats {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut nan_count = 0u64;
        for &v in values {
            if v.is_nan() {
                nan_count += 1;
            } else {
                min = min.min(v);
                max = max.max(v);
            }
        }
        ChunkStats {
            min,
            max,
            count: values.len() as u64,
            nan_count,
        }
    }

    /// Merges two chunk ranges into one covering both.
    #[must_use]
    pub fn merge(&self, other: &ChunkStats) -> ChunkStats {
        ChunkStats {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            count: self.count + other.count,
            nan_count: self.nan_count + other.nan_count,
        }
    }
}

/// One immutable column chunk: a shared slice plus optional statistics
/// (absent for data loaded from a pre-stats v1 manifest).
#[derive(Debug, Clone)]
pub struct ColumnChunk {
    /// The values, shared with whoever loaded them.
    pub values: Arc<[f64]>,
    /// Ingest-time statistics; `None` means no pruning for this chunk.
    pub stats: Option<ChunkStats>,
}

impl ColumnChunk {
    /// Wraps a shared slice, computing fresh statistics.
    #[must_use]
    pub fn with_stats(values: Arc<[f64]>) -> ColumnChunk {
        let stats = ChunkStats::compute(&values);
        ColumnChunk {
            values,
            stats: Some(stats),
        }
    }
}

/// An inclusive value range `[lo, hi]`, the predicate shape the prepare
/// pipeline pushes down to chunk statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangePredicate {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

impl RangePredicate {
    /// Whether one value satisfies the predicate. NaN never does.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }

    /// Whether a chunk with these statistics **may** hold a matching
    /// value. `false` means the whole chunk can be skipped unseen:
    /// every non-NaN value lies in `[stats.min, stats.max]`, and NaNs
    /// never match a range comparison.
    #[must_use]
    pub fn may_match(&self, stats: &ChunkStats) -> bool {
        !(stats.max < self.lo || stats.min > self.hi)
    }
}

/// What chunk pruning skipped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// Chunks examined.
    pub chunks: usize,
    /// Chunks discarded by statistics alone.
    pub pruned_chunks: usize,
    /// Rows inside the discarded chunks (never scanned).
    pub pruned_rows: u64,
}

impl PruneReport {
    /// Fraction of chunks discarded (0 when there were none).
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.chunks == 0 {
            0.0
        } else {
            self.pruned_chunks as f64 / self.chunks as f64
        }
    }
}

/// A column as immutable shared chunks with prefix offsets. Cloning is
/// cheap (two `Arc` bumps); the values are never copied.
#[derive(Debug, Clone)]
pub struct ColumnarBuf {
    chunks: Arc<Vec<ColumnChunk>>,
    /// `offsets[i]` is the global row index where chunk `i` starts;
    /// one trailing entry holds the total length.
    offsets: Arc<Vec<usize>>,
}

impl ColumnarBuf {
    /// Builds a buffer over `chunks` (empty chunks are allowed).
    #[must_use]
    pub fn new(chunks: Vec<ColumnChunk>) -> ColumnarBuf {
        let mut offsets = Vec::with_capacity(chunks.len() + 1);
        offsets.push(0usize);
        for c in &chunks {
            offsets.push(offsets.last().copied().unwrap_or(0) + c.values.len());
        }
        ColumnarBuf {
            chunks: Arc::new(chunks),
            offsets: Arc::new(offsets),
        }
    }

    /// Chunks a flat slice into a buffer with fresh statistics — the
    /// ingest shape, used by tests and synthetic datasets.
    #[must_use]
    pub fn from_values(values: &[f64], chunk_rows: usize) -> ColumnarBuf {
        let chunk_rows = chunk_rows.max(1);
        let chunks = values
            .chunks(chunk_rows)
            .map(|w| ColumnChunk::with_stats(Arc::from(w.to_vec())))
            .collect();
        ColumnarBuf::new(chunks)
    }

    /// A single-chunk buffer of `rows` zeros (the synthetic column the
    /// server substitutes for value-free COUNT queries).
    #[must_use]
    pub fn zeros(rows: usize) -> ColumnarBuf {
        ColumnarBuf::new(vec![ColumnChunk::with_stats(Arc::from(vec![0.0; rows]))])
    }

    /// Total rows.
    #[must_use]
    pub fn len(&self) -> usize {
        *self.offsets.last().expect("offsets never empty")
    }

    /// Whether the column holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of chunks.
    #[must_use]
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// The chunk list.
    #[must_use]
    pub fn chunks(&self) -> &[ColumnChunk] {
        &self.chunks
    }

    /// The value at global row `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of bounds.
    #[must_use]
    pub fn value(&self, g: usize) -> f64 {
        let (chunk, off) = self.locate(g);
        self.chunks[chunk].values[off]
    }

    /// Maps a global row index to `(chunk, offset-in-chunk)`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of bounds.
    #[must_use]
    pub fn locate(&self, g: usize) -> (usize, usize) {
        assert!(g < self.len(), "row {g} out of bounds ({})", self.len());
        // partition_point finds the first offset beyond g; its
        // predecessor starts the chunk holding g. Empty chunks share an
        // offset with their successor and are skipped naturally.
        let chunk = self.offsets.partition_point(|&o| o <= g) - 1;
        (chunk, g - self.offsets[chunk])
    }

    /// Gathers the values at ascending global indices in one pass —
    /// how the prepare pipeline materialises the sample S without
    /// touching the rest of the column.
    ///
    /// # Panics
    ///
    /// Panics if the indices are not strictly increasing or out of
    /// bounds.
    #[must_use]
    pub fn gather_sorted(&self, indices: &[usize]) -> Vec<f64> {
        let mut out = Vec::with_capacity(indices.len());
        let mut chunk = 0usize;
        let mut prev: Option<usize> = None;
        for &g in indices {
            assert!(
                prev.is_none_or(|p| p < g),
                "gather indices must be strictly increasing"
            );
            prev = Some(g);
            assert!(g < self.len(), "row {g} out of bounds ({})", self.len());
            while self.offsets[chunk + 1] <= g {
                chunk += 1;
            }
            out.push(self.chunks[chunk].values[g - self.offsets[chunk]]);
        }
        out
    }

    /// Calls `f` with each contiguous slice covering rows
    /// `[start, end)`, in row order. The caller sees at most one slice
    /// per chunk; empty intersections are skipped.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end` exceeds the length.
    pub fn for_each_slice_in(&self, start: usize, end: usize, mut f: impl FnMut(usize, &[f64])) {
        assert!(
            start <= end && end <= self.len(),
            "bad range {start}..{end}"
        );
        if start == end {
            return;
        }
        let (mut chunk, _) = self.locate(start);
        let mut at = start;
        while at < end {
            let chunk_start = self.offsets[chunk];
            let chunk_end = self.offsets[chunk + 1];
            if chunk_start < chunk_end {
                let lo = at - chunk_start;
                let hi = end.min(chunk_end) - chunk_start;
                f(at, &self.chunks[chunk].values[lo..hi]);
                at = end.min(chunk_end);
            }
            chunk += 1;
        }
    }

    /// Materialises the column as one flat vector (the row-path
    /// bridge; the columnar path itself never calls this).
    #[must_use]
    pub fn to_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        for c in self.chunks.iter() {
            out.extend_from_slice(&c.values);
        }
        out
    }

    /// The union of all chunk statistics, or `None` if any chunk lacks
    /// them (v1 data).
    #[must_use]
    pub fn total_stats(&self) -> Option<ChunkStats> {
        let mut acc: Option<ChunkStats> = None;
        for c in self.chunks.iter() {
            let s = c.stats.as_ref()?;
            acc = Some(match acc {
                Some(a) => a.merge(s),
                None => *s,
            });
        }
        acc.or(Some(ChunkStats::compute(&[])))
    }

    /// Drops whole chunks that cannot contain a value matching `pred`,
    /// using ingest statistics only — no record is read. Chunks without
    /// statistics are conservatively kept.
    #[must_use]
    pub fn prune(&self, pred: &RangePredicate) -> (ColumnarBuf, PruneReport) {
        let mut kept = Vec::with_capacity(self.chunks.len());
        let mut report = PruneReport {
            chunks: self.chunks.len(),
            ..PruneReport::default()
        };
        for c in self.chunks.iter() {
            match &c.stats {
                Some(s) if !pred.may_match(s) => {
                    report.pruned_chunks += 1;
                    report.pruned_rows += c.values.len() as u64;
                }
                _ => kept.push(c.clone()),
            }
        }
        (ColumnarBuf::new(kept), report)
    }
}

/// The slab boundaries [`Context::parallelize`] gives `len` records
/// over `partitions` partitions: consecutive ranges of
/// `len.div_ceil(partitions)` rows. The columnar reduce folds inside
/// these exact boundaries so its floating-point accumulation order is
/// bit-identical to the row path's per-partition combine.
#[must_use]
pub fn slab_ranges(len: usize, partitions: usize) -> Vec<(usize, usize)> {
    assert!(partitions > 0, "partitions must be positive");
    if len == 0 {
        return vec![(0, 0)];
    }
    let slab = len.div_ceil(partitions);
    let mut out = Vec::with_capacity(partitions);
    let mut at = 0usize;
    while at < len {
        let end = (at + slab).min(len);
        out.push((at, end));
        at = end;
    }
    out
}

/// A columnar buffer bound to an engine context: kernels run as real
/// stages (one task per chunk or per slab) with the same metrics,
/// timing and scan-cost semantics as row stages.
#[derive(Debug, Clone)]
pub struct ColumnarDataset {
    ctx: Context,
    buf: ColumnarBuf,
}

impl ColumnarDataset {
    /// Binds `buf` to `ctx`.
    #[must_use]
    pub fn new(ctx: &Context, buf: ColumnarBuf) -> ColumnarDataset {
        ColumnarDataset {
            ctx: ctx.clone(),
            buf,
        }
    }

    /// The engine handle.
    #[must_use]
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// The underlying buffer (cheap to clone).
    #[must_use]
    pub fn buf(&self) -> &ColumnarBuf {
        &self.buf
    }

    /// Total rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the dataset holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Aggregates chunk-at-a-time: one engine task per chunk folds its
    /// contiguous slice, and the partials come back in chunk order.
    /// The per-chunk fold is a tight loop over a `&[f64]` slice — the
    /// auto-vectorizable shape.
    pub fn aggregate_chunks<A, F>(&self, name: &str, fold: F) -> Vec<A>
    where
        A: Send + 'static,
        F: Fn(&[f64]) -> A + Send + Sync + 'static,
    {
        let buf = self.buf.clone();
        let scan_ns = self.ctx.scan_cost_ns();
        self.ctx.record_processed_public(self.buf.len() as u64);
        self.ctx.run_tasks(
            name,
            (0..buf.num_chunks()).collect(),
            move |_i, chunk: usize| {
                let values = &buf.chunks()[chunk].values;
                scan_delay(values.len(), scan_ns);
                fold(values)
            },
        )
    }

    /// Projects chunk-at-a-time into a new columnar dataset (map /
    /// project): one task per chunk, fresh statistics per output chunk.
    pub fn map_chunks<F>(&self, name: &str, f: F) -> ColumnarDataset
    where
        F: Fn(&[f64]) -> Vec<f64> + Send + Sync + 'static,
    {
        let mapped = self.aggregate_chunks(name, move |slice| {
            ColumnChunk::with_stats(Arc::from(f(slice)))
        });
        ColumnarDataset::new(&self.ctx, ColumnarBuf::new(mapped))
    }

    /// Filters records chunk-at-a-time **after** pruning whole chunks
    /// by statistics. Returns the surviving records as a new columnar
    /// dataset plus the prune report — the predicate-pushdown hook.
    pub fn filter_range(&self, name: &str, pred: RangePredicate) -> (ColumnarDataset, PruneReport) {
        let (kept, report) = self.buf.prune(&pred);
        let survivors = ColumnarDataset::new(&self.ctx, kept).map_chunks(name, move |slice| {
            slice
                .iter()
                .copied()
                .filter(|&x| pred.contains(x))
                .collect()
        });
        (survivors, report)
    }

    /// Runs one engine stage with a task per row range: `f(range_index,
    /// buffer, start, end)`. Ranges are typically [`slab_ranges`] so the
    /// work mirrors the row path's partitioning; record counters charge
    /// the rows covered by the ranges.
    pub fn run_ranges<A, F>(&self, name: &str, ranges: Vec<(usize, usize)>, f: F) -> Vec<A>
    where
        A: Send + 'static,
        F: Fn(usize, &ColumnarBuf, usize, usize) -> A + Send + Sync + 'static,
    {
        let buf = self.buf.clone();
        let scan_ns = self.ctx.scan_cost_ns();
        let records: u64 = ranges.iter().map(|&(s, e)| (e - s) as u64).sum();
        self.ctx.record_processed_public(records);
        self.ctx
            .run_tasks(name, ranges, move |i, (start, end): (usize, usize)| {
                scan_delay(end - start, scan_ns);
                f(i, &buf, start, end)
            })
    }

    /// Materialises a row [`Dataset`] with [`Context::parallelize`]
    /// boundaries — the bridge back to the row engine for paths the
    /// columnar kernels do not cover (and for equivalence tests).
    #[must_use]
    pub fn to_row_dataset(&self) -> Dataset<f64> {
        self.ctx
            .parallelize(self.buf.to_vec(), self.ctx.config().default_partitions)
    }

    /// Hands the chunk buffers to the row engine as partitions without
    /// copying values — each chunk becomes one partition.
    #[must_use]
    pub fn chunk_partitioned_dataset(&self) -> Dataset<f64> {
        let parts: Vec<Arc<Vec<f64>>> = self
            .buf
            .chunks()
            .iter()
            .map(|c| Arc::new(c.values.to_vec()))
            .collect();
        Dataset::from_parts(
            self.ctx.clone(),
            parts,
            Lineage::source(format!("columnar[{} chunks]", self.buf.num_chunks())),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(values: &[f64], chunk_rows: usize) -> ColumnarBuf {
        ColumnarBuf::from_values(values, chunk_rows)
    }

    #[test]
    fn stats_handle_nan_and_infinities() {
        let s = ChunkStats::compute(&[1.0, f64::NAN, -3.0, f64::INFINITY]);
        assert_eq!(s.min, -3.0);
        assert_eq!(s.max, f64::INFINITY);
        assert_eq!(s.count, 4);
        assert_eq!(s.nan_count, 1);

        let empty = ChunkStats::compute(&[]);
        assert_eq!(empty.min, f64::INFINITY);
        assert_eq!(empty.max, f64::NEG_INFINITY);

        let all_nan = ChunkStats::compute(&[f64::NAN, f64::NAN]);
        assert_eq!(all_nan.nan_count, 2);
        assert_eq!(all_nan.min, f64::INFINITY);
    }

    #[test]
    fn locate_value_and_gather_cross_chunks() {
        let values: Vec<f64> = (0..100).map(f64::from).collect();
        let b = buf(&values, 7);
        assert_eq!(b.len(), 100);
        assert_eq!(b.num_chunks(), 15);
        for g in [0usize, 6, 7, 13, 99] {
            assert_eq!(b.value(g), g as f64);
        }
        assert_eq!(b.locate(7), (1, 0));
        let picked = b.gather_sorted(&[0, 6, 7, 50, 99]);
        assert_eq!(picked, vec![0.0, 6.0, 7.0, 50.0, 99.0]);
    }

    #[test]
    fn slice_iteration_covers_ranges_exactly() {
        let values: Vec<f64> = (0..20).map(f64::from).collect();
        let b = buf(&values, 6);
        let mut seen = Vec::new();
        b.for_each_slice_in(4, 17, |at, slice| {
            assert_eq!(slice[0], at as f64);
            seen.extend_from_slice(slice);
        });
        assert_eq!(seen, (4..17).map(f64::from).collect::<Vec<_>>());
        // Empty range yields nothing.
        b.for_each_slice_in(5, 5, |_, _| panic!("no slices expected"));
    }

    #[test]
    fn single_record_chunks_round_trip() {
        let values = vec![3.0, f64::NAN, -1.0];
        let b = buf(&values, 1);
        assert_eq!(b.num_chunks(), 3);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&b.to_vec()), bits(&values));
    }

    #[test]
    fn pruning_skips_out_of_range_chunks_only() {
        let mut values: Vec<f64> = (0..30).map(f64::from).collect();
        values[25] = f64::NAN; // NaN in an out-of-range chunk must not block pruning
        let b = buf(&values, 10);
        let pred = RangePredicate { lo: 12.0, hi: 15.0 };
        let (kept, report) = b.prune(&pred);
        assert_eq!(report.chunks, 3);
        assert_eq!(report.pruned_chunks, 2);
        assert_eq!(report.pruned_rows, 20);
        assert!((report.rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(kept.len(), 10);
        assert_eq!(kept.value(0), 10.0);
    }

    #[test]
    fn chunks_without_stats_are_never_pruned() {
        let chunk = ColumnChunk {
            values: Arc::from(vec![100.0, 200.0]),
            stats: None,
        };
        let b = ColumnarBuf::new(vec![chunk]);
        let (kept, report) = b.prune(&RangePredicate { lo: 0.0, hi: 1.0 });
        assert_eq!(report.pruned_chunks, 0);
        assert_eq!(kept.len(), 2);
        assert!(b.total_stats().is_none());
    }

    #[test]
    fn slab_ranges_match_parallelize_boundaries() {
        let ctx = Context::with_threads(3);
        for len in [0usize, 1, 2, 9, 10, 100, 101] {
            for parts in [1usize, 2, 3, 7] {
                let ds = ctx.parallelize((0..len as i64).collect::<Vec<i64>>(), parts);
                let ranges = slab_ranges(len, parts);
                let sizes: Vec<usize> = ranges.iter().map(|&(s, e)| e - s).collect();
                let actual: Vec<usize> = ds.partitions().iter().map(|p| p.len()).collect();
                assert_eq!(sizes, actual, "len={len} parts={parts}");
            }
        }
    }

    #[test]
    fn aggregate_chunks_runs_as_one_stage_with_metrics() {
        let ctx = Context::with_threads(2);
        let values: Vec<f64> = (0..1000).map(f64::from).collect();
        let ds = ColumnarDataset::new(&ctx, buf(&values, 64));
        let before = ctx.metrics();
        let partials = ds.aggregate_chunks("columnar[sum]", |s| s.iter().sum::<f64>());
        let total: f64 = partials.iter().sum();
        assert_eq!(total, 999.0 * 1000.0 / 2.0);
        let delta = ctx.metrics().since(&before);
        assert_eq!(delta.stages, 1);
        assert_eq!(delta.tasks, 16);
        assert_eq!(delta.records_processed, 1000);
        assert_eq!(delta.shuffles, 0);
    }

    #[test]
    fn filter_range_prunes_then_filters() {
        let ctx = Context::with_threads(2);
        let values: Vec<f64> = (0..100).map(f64::from).collect();
        let ds = ColumnarDataset::new(&ctx, buf(&values, 10));
        let (survivors, report) =
            ds.filter_range("columnar[filter]", RangePredicate { lo: 33.0, hi: 36.0 });
        assert_eq!(report.pruned_chunks, 9);
        assert_eq!(survivors.buf().to_vec(), vec![33.0, 34.0, 35.0, 36.0]);
    }

    #[test]
    fn map_chunks_projects_with_fresh_stats() {
        let ctx = Context::with_threads(2);
        let ds = ColumnarDataset::new(&ctx, buf(&[1.0, 2.0, 3.0, 4.0], 2));
        let doubled = ds.map_chunks("columnar[double]", |s| s.iter().map(|x| x * 2.0).collect());
        assert_eq!(doubled.buf().to_vec(), vec![2.0, 4.0, 6.0, 8.0]);
        let stats = doubled.buf().total_stats().unwrap();
        assert_eq!((stats.min, stats.max), (2.0, 8.0));
    }

    #[test]
    fn run_ranges_charges_covered_rows() {
        let ctx = Context::with_threads(2);
        let values: Vec<f64> = (0..50).map(f64::from).collect();
        let ds = ColumnarDataset::new(&ctx, buf(&values, 8));
        let before = ctx.metrics();
        let ranges = slab_ranges(50, 4);
        let sums = ds.run_ranges("columnar[ranges]", ranges.clone(), |_, b, s, e| {
            let mut acc = 0.0;
            b.for_each_slice_in(s, e, |_, slice| acc += slice.iter().sum::<f64>());
            acc
        });
        assert_eq!(sums.len(), ranges.len());
        assert_eq!(sums.iter().sum::<f64>(), 49.0 * 50.0 / 2.0);
        let delta = ctx.metrics().since(&before);
        assert_eq!(delta.stages, 1);
        assert_eq!(delta.records_processed, 50);
    }

    #[test]
    fn row_bridges_preserve_order() {
        let ctx = Context::with_threads(2);
        let values: Vec<f64> = (0..33).map(f64::from).collect();
        let ds = ColumnarDataset::new(&ctx, buf(&values, 5));
        assert_eq!(ds.to_row_dataset().collect(), values);
        assert_eq!(ds.chunk_partitioned_dataset().collect(), values);
        assert_eq!(ds.chunk_partitioned_dataset().num_partitions(), 7);
    }

    #[test]
    fn zeros_and_empty_buffers_behave() {
        let z = ColumnarBuf::zeros(4);
        assert_eq!(z.to_vec(), vec![0.0; 4]);
        let empty = ColumnarBuf::new(Vec::new());
        assert_eq!(empty.len(), 0);
        assert!(empty.is_empty());
        assert_eq!(slab_ranges(0, 4), vec![(0, 0)]);
    }
}
