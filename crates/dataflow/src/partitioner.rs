//! Partitioners: how shuffles route records to reduce-side buckets.
//!
//! Spark exposes the same abstraction (`HashPartitioner` /
//! `RangePartitioner`); here the hash partitioner drives the key-value
//! operators and the range partitioner drives `sort_by_key`.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Routes a key to one of `buckets` reduce-side partitions.
pub trait Partitioner<K>: Send + Sync {
    /// The bucket for `key`; must be `< buckets`.
    fn partition(&self, key: &K, buckets: usize) -> usize;
}

/// Deterministic hash partitioning (fixed-key SipHash via
/// `DefaultHasher::new()`, stable across runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HashPartitioner;

impl<K: Hash> Partitioner<K> for HashPartitioner {
    fn partition(&self, key: &K, buckets: usize) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % buckets as u64) as usize
    }
}

/// Range partitioning over sorted boundary keys: bucket `i` receives keys
/// in `(boundary[i-1], boundary[i]]`. With `b` boundaries there are
/// `b + 1` buckets; the partitioner ignores the `buckets` argument beyond
/// asserting it is large enough.
#[derive(Debug, Clone)]
pub struct RangePartitioner<K> {
    boundaries: Vec<K>,
}

impl<K: Ord + Clone> RangePartitioner<K> {
    /// Builds a partitioner from **sorted, distinct** boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `boundaries` is not strictly increasing.
    pub fn new(boundaries: Vec<K>) -> Self {
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "boundaries must be strictly increasing"
        );
        RangePartitioner { boundaries }
    }

    /// Builds boundaries by sampling `sample` (sorted internally) into
    /// `buckets − 1` quantile points.
    pub fn from_sample(mut sample: Vec<K>, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        sample.sort();
        sample.dedup();
        let mut boundaries = Vec::new();
        if !sample.is_empty() {
            for i in 1..buckets {
                let idx = i * sample.len() / buckets;
                if idx < sample.len() {
                    let candidate = sample[idx].clone();
                    if boundaries.last() != Some(&candidate) {
                        boundaries.push(candidate);
                    }
                }
            }
        }
        RangePartitioner { boundaries }
    }

    /// Number of buckets this partitioner produces.
    pub fn num_buckets(&self) -> usize {
        self.boundaries.len() + 1
    }
}

impl<K: Ord + Clone + Send + Sync> Partitioner<K> for RangePartitioner<K> {
    fn partition(&self, key: &K, buckets: usize) -> usize {
        debug_assert!(buckets >= self.num_buckets(), "not enough buckets");
        match self.boundaries.binary_search(key) {
            Ok(i) => i,
            Err(i) => i,
        }
        .min(buckets - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_is_deterministic_and_in_range() {
        let p = HashPartitioner;
        for k in 0u64..1_000 {
            let b = p.partition(&k, 7);
            assert!(b < 7);
            assert_eq!(b, p.partition(&k, 7));
        }
    }

    #[test]
    fn hash_partitioner_spreads_keys() {
        let p = HashPartitioner;
        let mut counts = [0usize; 4];
        for k in 0u64..4_000 {
            counts[p.partition(&k, 4)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "imbalanced bucket: {c}");
        }
    }

    #[test]
    fn range_partitioner_orders_buckets() {
        let p = RangePartitioner::new(vec![10, 20, 30]);
        assert_eq!(p.num_buckets(), 4);
        assert_eq!(p.partition(&5, 4), 0);
        assert_eq!(p.partition(&10, 4), 0); // boundary inclusive left
        assert_eq!(p.partition(&15, 4), 1);
        assert_eq!(p.partition(&20, 4), 1);
        assert_eq!(p.partition(&25, 4), 2);
        assert_eq!(p.partition(&99, 4), 3);
        // Monotone: larger keys never land in smaller buckets.
        let mut prev = 0;
        for k in 0..100 {
            let b = p.partition(&k, 4);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn from_sample_builds_balanced_boundaries() {
        let sample: Vec<i64> = (0..1_000).collect();
        let p = RangePartitioner::from_sample(sample, 4);
        assert_eq!(p.num_buckets(), 4);
        let mut counts = [0usize; 4];
        for k in 0i64..1_000 {
            counts[p.partition(&k, 4)] += 1;
        }
        for c in counts {
            assert!((150..400).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn from_sample_handles_tiny_samples() {
        let p = RangePartitioner::from_sample(vec![5, 5, 5], 8);
        assert!(p.num_buckets() <= 8);
        assert_eq!(p.partition(&1, 8), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_boundaries_rejected() {
        let _ = RangePartitioner::new(vec![3, 1]);
    }
}
