//! Engine metrics.
//!
//! The paper's performance evaluation (Figures 2(b), 4(a), 4(b)) explains
//! UPA's overhead in terms of *extra shuffles* — RANGE ENFORCER exchanges
//! partition records between computers, and `joinDP` shuffles twice where
//! vanilla Spark shuffles once. To reproduce that analysis the engine
//! counts every stage, task, retry and shuffle, and the benchmark harness
//! reports them next to wall-clock numbers.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters, owned by a [`crate::Context`].
#[derive(Debug, Default)]
pub struct Metrics {
    stages: AtomicU64,
    tasks: AtomicU64,
    task_retries: AtomicU64,
    shuffles: AtomicU64,
    shuffle_records: AtomicU64,
    records_processed: AtomicU64,
    stage_nanos: Mutex<HashMap<String, u64>>,
}

impl Metrics {
    /// Creates a zeroed metrics registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    pub(crate) fn record_stage(&self, tasks: u64) {
        self.stages.fetch_add(1, Ordering::Relaxed);
        self.tasks.fetch_add(tasks, Ordering::Relaxed);
    }

    pub(crate) fn record_retry(&self) {
        self.task_retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shuffle(&self, records: u64) {
        self.shuffles.fetch_add(1, Ordering::Relaxed);
        self.shuffle_records.fetch_add(records, Ordering::Relaxed);
    }

    pub(crate) fn record_processed(&self, records: u64) {
        self.records_processed.fetch_add(records, Ordering::Relaxed);
    }

    pub(crate) fn record_stage_time(&self, name: &str, nanos: u64) {
        *self.stage_nanos.lock().entry(name.to_string()).or_insert(0) += nanos;
    }

    /// Cumulative wall-clock nanoseconds per stage name — the basis of
    /// the paper's "time spent in shuffling" analysis (§VI-D reports more
    /// than 42.8% of execution time in shuffles for the local queries).
    pub fn stage_times(&self) -> HashMap<String, u64> {
        self.stage_nanos.lock().clone()
    }

    /// Fraction of recorded stage time spent in shuffle stages
    /// (`shuffle-write`/`shuffle-read` plus the shuffle-consuming
    /// reducers), or 0 when nothing was recorded.
    pub fn shuffle_time_share(&self) -> f64 {
        let times = self.stage_nanos.lock();
        let total: u64 = times.values().sum();
        if total == 0 {
            return 0.0;
        }
        let shuffle: u64 = times
            .iter()
            .filter(|(name, _)| {
                name.starts_with("shuffle")
                    || name.as_str() == "reduce_by_key"
                    || name.as_str() == "join"
                    || name.as_str() == "group_by_key"
            })
            .map(|(_, ns)| *ns)
            .sum();
        shuffle as f64 / total as f64
    }

    /// Takes a point-in-time snapshot of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            stages: self.stages.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
            task_retries: self.task_retries.load(Ordering::Relaxed),
            shuffles: self.shuffles.load(Ordering::Relaxed),
            shuffle_records: self.shuffle_records.load(Ordering::Relaxed),
            records_processed: self.records_processed.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero (used between benchmark runs).
    pub fn reset(&self) {
        self.stages.store(0, Ordering::Relaxed);
        self.tasks.store(0, Ordering::Relaxed);
        self.task_retries.store(0, Ordering::Relaxed);
        self.shuffles.store(0, Ordering::Relaxed);
        self.shuffle_records.store(0, Ordering::Relaxed);
        self.records_processed.store(0, Ordering::Relaxed);
        self.stage_nanos.lock().clear();
    }
}

/// An immutable snapshot of [`Metrics`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Number of stages executed.
    pub stages: u64,
    /// Number of tasks launched (excluding retries).
    pub tasks: u64,
    /// Number of task retries triggered by fault injection.
    pub task_retries: u64,
    /// Number of shuffle operations.
    pub shuffles: u64,
    /// Total records moved across shuffles.
    pub shuffle_records: u64,
    /// Total records processed by narrow stages.
    pub records_processed: u64,
}

impl MetricsSnapshot {
    /// Difference between two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            stages: self.stages - earlier.stages,
            tasks: self.tasks - earlier.tasks,
            task_retries: self.task_retries - earlier.task_retries,
            shuffles: self.shuffles - earlier.shuffles,
            shuffle_records: self.shuffle_records - earlier.shuffle_records,
            records_processed: self.records_processed - earlier.records_processed,
        }
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stages={} tasks={} retries={} shuffles={} shuffle_records={} records={}",
            self.stages,
            self.tasks,
            self.task_retries,
            self.shuffles,
            self.shuffle_records,
            self.records_processed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.record_stage(4);
        m.record_stage(2);
        m.record_retry();
        m.record_shuffle(100);
        m.record_processed(50);
        let s = m.snapshot();
        assert_eq!(s.stages, 2);
        assert_eq!(s.tasks, 6);
        assert_eq!(s.task_retries, 1);
        assert_eq!(s.shuffles, 1);
        assert_eq!(s.shuffle_records, 100);
        assert_eq!(s.records_processed, 50);
    }

    #[test]
    fn since_computes_deltas() {
        let m = Metrics::new();
        m.record_stage(1);
        let before = m.snapshot();
        m.record_stage(3);
        m.record_shuffle(10);
        let delta = m.snapshot().since(&before);
        assert_eq!(delta.stages, 1);
        assert_eq!(delta.tasks, 3);
        assert_eq!(delta.shuffles, 1);
        assert_eq!(delta.shuffle_records, 10);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = Metrics::new();
        m.record_stage(1);
        m.record_shuffle(5);
        m.record_stage_time("map", 100);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        assert!(m.stage_times().is_empty());
    }

    #[test]
    fn stage_times_accumulate_by_name() {
        let m = Metrics::new();
        m.record_stage_time("map", 100);
        m.record_stage_time("map", 50);
        m.record_stage_time("shuffle-write", 150);
        let times = m.stage_times();
        assert_eq!(times["map"], 150);
        assert_eq!(times["shuffle-write"], 150);
        assert!((m.shuffle_time_share() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shuffle_share_of_empty_metrics_is_zero() {
        assert_eq!(Metrics::new().shuffle_time_share(), 0.0);
    }

    #[test]
    fn display_mentions_all_counters() {
        let s = MetricsSnapshot {
            stages: 1,
            tasks: 2,
            task_retries: 3,
            shuffles: 4,
            shuffle_records: 5,
            records_processed: 6,
        };
        let text = s.to_string();
        for field in ["stages=1", "tasks=2", "retries=3", "shuffles=4"] {
            assert!(text.contains(field), "missing {field} in {text}");
        }
    }
}
