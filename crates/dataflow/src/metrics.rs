//! Engine metrics and the span/timer API.
//!
//! The paper's performance evaluation (Figures 2(b), 4(a), 4(b)) explains
//! UPA's overhead in terms of *extra shuffles* — RANGE ENFORCER exchanges
//! partition records between computers, and `joinDP` shuffles twice where
//! vanilla Spark shuffles once. To reproduce that analysis the engine
//! counts every stage, task, retry, shuffle record and shuffle byte, and
//! the benchmark harness reports them next to wall-clock numbers.
//!
//! On top of the flat counters, [`SpanRecorder`] provides nested,
//! named stage scopes ([`SpanScope`] RAII guards) with per-stage
//! wall-clock time and record counts. `upa-core` threads one recorder
//! through every phase of Algorithm 1 to build its per-query audits.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Shared atomic counters, owned by a [`crate::Context`].
#[derive(Debug, Default)]
pub struct Metrics {
    stages: AtomicU64,
    tasks: AtomicU64,
    task_retries: AtomicU64,
    shuffles: AtomicU64,
    shuffle_records: AtomicU64,
    shuffle_bytes: AtomicU64,
    records_processed: AtomicU64,
    stage_nanos: Mutex<HashMap<String, u64>>,
}

impl Metrics {
    /// Creates a zeroed metrics registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    pub(crate) fn record_stage(&self, tasks: u64) {
        self.stages.fetch_add(1, Ordering::Relaxed);
        self.tasks.fetch_add(tasks, Ordering::Relaxed);
    }

    pub(crate) fn record_retry(&self) {
        self.task_retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shuffle(&self, records: u64, bytes: u64) {
        self.shuffles.fetch_add(1, Ordering::Relaxed);
        self.shuffle_records.fetch_add(records, Ordering::Relaxed);
        self.shuffle_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_processed(&self, records: u64) {
        self.records_processed.fetch_add(records, Ordering::Relaxed);
    }

    pub(crate) fn record_stage_time(&self, name: &str, nanos: u64) {
        *self.stage_nanos.lock().entry(name.to_string()).or_insert(0) += nanos;
    }

    /// Cumulative wall-clock nanoseconds per stage name — the basis of
    /// the paper's "time spent in shuffling" analysis (§VI-D reports more
    /// than 42.8% of execution time in shuffles for the local queries).
    pub fn stage_times(&self) -> HashMap<String, u64> {
        self.stage_nanos.lock().clone()
    }

    /// Fraction of recorded stage time spent in shuffle stages
    /// (`shuffle-write`/`shuffle-read` plus the shuffle-consuming
    /// reducers), or 0 when nothing was recorded.
    pub fn shuffle_time_share(&self) -> f64 {
        let times = self.stage_nanos.lock();
        let total: u64 = times.values().sum();
        if total == 0 {
            return 0.0;
        }
        let shuffle: u64 = times
            .iter()
            .filter(|(name, _)| {
                name.starts_with("shuffle")
                    || name.as_str() == "reduce_by_key"
                    || name.as_str() == "join"
                    || name.as_str() == "group_by_key"
            })
            .map(|(_, ns)| *ns)
            .sum();
        shuffle as f64 / total as f64
    }

    /// Takes a point-in-time snapshot of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            stages: self.stages.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
            task_retries: self.task_retries.load(Ordering::Relaxed),
            shuffles: self.shuffles.load(Ordering::Relaxed),
            shuffle_records: self.shuffle_records.load(Ordering::Relaxed),
            shuffle_bytes: self.shuffle_bytes.load(Ordering::Relaxed),
            records_processed: self.records_processed.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero (used between benchmark runs).
    pub fn reset(&self) {
        self.stages.store(0, Ordering::Relaxed);
        self.tasks.store(0, Ordering::Relaxed);
        self.task_retries.store(0, Ordering::Relaxed);
        self.shuffles.store(0, Ordering::Relaxed);
        self.shuffle_records.store(0, Ordering::Relaxed);
        self.shuffle_bytes.store(0, Ordering::Relaxed);
        self.records_processed.store(0, Ordering::Relaxed);
        self.stage_nanos.lock().clear();
    }
}

/// An immutable snapshot of [`Metrics`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Number of stages executed.
    pub stages: u64,
    /// Number of tasks launched (excluding retries).
    pub tasks: u64,
    /// Number of task retries triggered by fault injection.
    pub task_retries: u64,
    /// Number of shuffle operations.
    pub shuffles: u64,
    /// Total records moved across shuffles.
    pub shuffle_records: u64,
    /// Approximate bytes moved across shuffles (records × in-memory
    /// record size; heap payloads of variable-size records are not
    /// chased).
    pub shuffle_bytes: u64,
    /// Total records processed by narrow stages.
    pub records_processed: u64,
}

impl MetricsSnapshot {
    /// Difference between two snapshots (`self` taken after `earlier`).
    ///
    /// Counters are monotonic between resets, so each field saturates at
    /// zero rather than underflowing if a reset happened in between.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            stages: self.stages.saturating_sub(earlier.stages),
            tasks: self.tasks.saturating_sub(earlier.tasks),
            task_retries: self.task_retries.saturating_sub(earlier.task_retries),
            shuffles: self.shuffles.saturating_sub(earlier.shuffles),
            shuffle_records: self.shuffle_records.saturating_sub(earlier.shuffle_records),
            shuffle_bytes: self.shuffle_bytes.saturating_sub(earlier.shuffle_bytes),
            records_processed: self
                .records_processed
                .saturating_sub(earlier.records_processed),
        }
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stages={} tasks={} retries={} shuffles={} shuffle_records={} shuffle_bytes={} records={}",
            self.stages,
            self.tasks,
            self.task_retries,
            self.shuffles,
            self.shuffle_records,
            self.shuffle_bytes,
            self.records_processed
        )
    }
}

/// One named, possibly nested, timed stage recorded by a [`SpanRecorder`].
///
/// Spans accumulate: entering the same path twice adds to `nanos`,
/// `records` and `calls` rather than producing a second span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSpan {
    /// Leaf name, e.g. `"sample"`.
    pub name: String,
    /// Slash-separated path from the root scope, e.g. `"prepare/sample"`.
    pub path: String,
    /// Nesting depth (0 for root scopes).
    pub depth: usize,
    /// Cumulative wall-clock nanoseconds spent inside the span. Clamped
    /// to at least 1 per call so that a recorded stage is never reported
    /// with a zero timing.
    pub nanos: u64,
    /// Records attributed to the span via [`SpanScope::add_records`].
    pub records: u64,
    /// Number of times the span was entered.
    pub calls: u64,
}

impl StageSpan {
    /// The span re-rooted under `prefix`: its path gains a
    /// `prefix/` head and its depth shifts down one level. Used to
    /// graft an engine span tree into an enclosing trace (e.g. a
    /// server's per-request record) without colliding with the host's
    /// own span namespace.
    pub fn rebased(&self, prefix: &str) -> StageSpan {
        StageSpan {
            name: self.name.clone(),
            path: format!("{prefix}/{}", self.path),
            depth: self.depth + 1,
            nanos: self.nanos,
            records: self.records,
            calls: self.calls,
        }
    }
}

#[derive(Debug, Default)]
struct SpanState {
    /// Current path segments of open scopes.
    stack: Vec<String>,
    /// First-seen order of span paths.
    order: Vec<String>,
    spans: HashMap<String, StageSpan>,
}

impl SpanState {
    fn add(&mut self, path: &str, depth: usize, nanos: u64, records: u64, calls: u64) {
        if let Some(span) = self.spans.get_mut(path) {
            span.nanos += nanos;
            span.records += records;
            span.calls += calls;
            return;
        }
        let name = path.rsplit('/').next().unwrap_or(path).to_string();
        self.order.push(path.to_string());
        self.spans.insert(
            path.to_string(),
            StageSpan {
                name,
                path: path.to_string(),
                depth,
                nanos,
                records,
                calls,
            },
        );
    }
}

/// Records a tree of named, timed stage scopes.
///
/// Cheap to clone (all clones share state). Scopes are opened with
/// [`SpanRecorder::enter`] and closed when the returned [`SpanScope`]
/// guard drops; nesting follows lexical scope. The recorder itself is
/// thread-safe, but the open-scope *stack* is shared, so nested scopes
/// should be opened and closed from one thread at a time (UPA's driver
/// loop; engine tasks report records through their guard instead).
#[derive(Debug, Clone, Default)]
pub struct SpanRecorder {
    inner: Arc<Mutex<SpanState>>,
}

impl SpanRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        SpanRecorder::default()
    }

    /// Opens a nested scope named `name` under the currently open scopes.
    /// The scope closes (and its elapsed time is recorded) when the
    /// returned guard drops.
    pub fn enter(&self, name: &str) -> SpanScope {
        let (path, depth) = {
            let mut st = self.inner.lock();
            let depth = st.stack.len();
            let path = if depth == 0 {
                name.to_string()
            } else {
                format!("{}/{}", st.stack.join("/"), name)
            };
            st.stack.push(name.to_string());
            (path, depth)
        };
        SpanScope {
            inner: Arc::clone(&self.inner),
            path,
            depth,
            records: 0,
            start: Instant::now(),
        }
    }

    /// Adds `records` to the innermost open scope (no-op when no scope
    /// is open).
    pub fn add_records(&self, records: u64) {
        let mut st = self.inner.lock();
        if st.stack.is_empty() {
            return;
        }
        let path = st.stack.join("/");
        let depth = st.stack.len() - 1;
        // Attribute to the open span without counting an extra call.
        st.add(&path, depth, 0, records, 0);
    }

    /// All spans recorded so far, in completion order (a span is recorded
    /// when its scope closes, so children precede their parents).
    pub fn spans(&self) -> Vec<StageSpan> {
        let st = self.inner.lock();
        st.order
            .iter()
            .filter_map(|p| st.spans.get(p).cloned())
            .collect()
    }

    /// Cumulative nanoseconds of the root (depth-0) spans.
    pub fn total_nanos(&self) -> u64 {
        self.inner
            .lock()
            .spans
            .values()
            .filter(|s| s.depth == 0)
            .map(|s| s.nanos)
            .sum()
    }

    /// Nanoseconds recorded for the first span whose leaf name is `name`,
    /// or 0 when no such span exists.
    pub fn nanos_of(&self, name: &str) -> u64 {
        let st = self.inner.lock();
        st.order
            .iter()
            .filter_map(|p| st.spans.get(p))
            .find(|s| s.name == name)
            .map(|s| s.nanos)
            .unwrap_or(0)
    }

    /// Discards every recorded span and closes all open scopes.
    pub fn clear(&self) {
        let mut st = self.inner.lock();
        st.stack.clear();
        st.order.clear();
        st.spans.clear();
    }
}

/// RAII guard for one open span scope; records elapsed time on drop.
#[must_use = "a span scope records its time when dropped"]
#[derive(Debug)]
pub struct SpanScope {
    inner: Arc<Mutex<SpanState>>,
    path: String,
    depth: usize,
    records: u64,
    start: Instant,
}

impl SpanScope {
    /// Attributes `records` to this span (flushed when the guard drops).
    pub fn add_records(&mut self, records: u64) {
        self.records += records;
    }

    /// The slash-separated path of this scope.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanScope {
    fn drop(&mut self) {
        let nanos = (self.start.elapsed().as_nanos() as u64).max(1);
        let mut st = self.inner.lock();
        // Close this scope and any forgotten children (robust against
        // out-of-order drops).
        st.stack.truncate(self.depth);
        st.add(&self.path, self.depth, nanos, self.records, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.record_stage(4);
        m.record_stage(2);
        m.record_retry();
        m.record_shuffle(100, 800);
        m.record_processed(50);
        let s = m.snapshot();
        assert_eq!(s.stages, 2);
        assert_eq!(s.tasks, 6);
        assert_eq!(s.task_retries, 1);
        assert_eq!(s.shuffles, 1);
        assert_eq!(s.shuffle_records, 100);
        assert_eq!(s.shuffle_bytes, 800);
        assert_eq!(s.records_processed, 50);
    }

    #[test]
    fn since_computes_deltas() {
        let m = Metrics::new();
        m.record_stage(1);
        let before = m.snapshot();
        m.record_stage(3);
        m.record_shuffle(10, 40);
        let delta = m.snapshot().since(&before);
        assert_eq!(delta.stages, 1);
        assert_eq!(delta.tasks, 3);
        assert_eq!(delta.shuffles, 1);
        assert_eq!(delta.shuffle_records, 10);
        assert_eq!(delta.shuffle_bytes, 40);
    }

    #[test]
    fn since_saturates_instead_of_underflowing() {
        let m = Metrics::new();
        m.record_stage(2);
        let before = m.snapshot();
        m.reset();
        let delta = m.snapshot().since(&before);
        assert_eq!(delta, MetricsSnapshot::default());
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = Metrics::new();
        m.record_stage(1);
        m.record_shuffle(5, 20);
        m.record_stage_time("map", 100);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        assert!(m.stage_times().is_empty());
    }

    #[test]
    fn stage_times_accumulate_by_name() {
        let m = Metrics::new();
        m.record_stage_time("map", 100);
        m.record_stage_time("map", 50);
        m.record_stage_time("shuffle-write", 150);
        let times = m.stage_times();
        assert_eq!(times["map"], 150);
        assert_eq!(times["shuffle-write"], 150);
        assert!((m.shuffle_time_share() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shuffle_share_of_empty_metrics_is_zero() {
        assert_eq!(Metrics::new().shuffle_time_share(), 0.0);
    }

    #[test]
    fn display_mentions_all_counters() {
        let s = MetricsSnapshot {
            stages: 1,
            tasks: 2,
            task_retries: 3,
            shuffles: 4,
            shuffle_records: 5,
            shuffle_bytes: 6,
            records_processed: 7,
        };
        let text = s.to_string();
        for field in [
            "stages=1",
            "tasks=2",
            "retries=3",
            "shuffles=4",
            "shuffle_bytes=6",
        ] {
            assert!(text.contains(field), "missing {field} in {text}");
        }
    }

    #[test]
    fn spans_nest_and_accumulate() {
        let rec = SpanRecorder::new();
        {
            let _outer = rec.enter("prepare");
            {
                let mut inner = rec.enter("sample");
                inner.add_records(10);
            }
            {
                let mut inner = rec.enter("sample");
                inner.add_records(5);
            }
            let _other = rec.enter("map");
        }
        let spans = rec.spans();
        let paths: Vec<&str> = spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["prepare/sample", "prepare/map", "prepare"]);
        let sample = &spans[0];
        assert_eq!(sample.name, "sample");
        assert_eq!(sample.depth, 1);
        assert_eq!(sample.calls, 2);
        assert_eq!(sample.records, 15);
        assert!(sample.nanos >= 2, "two calls clamp to >= 1ns each");
        let prepare = spans.iter().find(|s| s.path == "prepare").unwrap();
        assert_eq!(prepare.depth, 0);
        assert!(prepare.nanos >= sample.nanos, "parent covers children");
    }

    #[test]
    fn recorder_level_records_hit_innermost_open_span() {
        let rec = SpanRecorder::new();
        {
            let _outer = rec.enter("release");
            {
                let _inner = rec.enter("noise");
                rec.add_records(3);
            }
        }
        assert_eq!(
            rec.spans()
                .iter()
                .find(|s| s.path == "release/noise")
                .unwrap()
                .records,
            3
        );
        rec.add_records(99); // no open scope: dropped
        assert!(rec.spans().iter().all(|s| s.records != 99));
    }

    #[test]
    fn total_nanos_counts_only_roots() {
        let rec = SpanRecorder::new();
        {
            let _a = rec.enter("a");
            let _b = rec.enter("b");
        }
        let spans = rec.spans();
        let root: u64 = spans.iter().filter(|s| s.depth == 0).map(|s| s.nanos).sum();
        assert_eq!(rec.total_nanos(), root);
        assert!(rec.nanos_of("b") >= 1);
        assert_eq!(rec.nanos_of("missing"), 0);
    }

    #[test]
    fn clear_discards_spans_and_open_scopes() {
        let rec = SpanRecorder::new();
        let guard = rec.enter("left-open");
        rec.clear();
        assert!(rec.spans().is_empty());
        drop(guard); // records into a fresh stack; must not panic
        assert_eq!(rec.spans().len(), 1);
    }
}
