//! Error type for the dataflow engine.

/// Errors surfaced by the dataflow engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataflowError {
    /// A task failed more times than the configured retry budget allows.
    /// Carries the stage name and the zero-based task index.
    TaskFailed { stage: String, task: usize },
    /// An operation that requires a non-empty dataset was invoked on an
    /// empty one.
    EmptyDataset,
    /// A configuration value was invalid; the payload names it.
    InvalidConfig(&'static str),
}

impl std::fmt::Display for DataflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataflowError::TaskFailed { stage, task } => {
                write!(f, "task {task} of stage '{stage}' exhausted its retries")
            }
            DataflowError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            DataflowError::InvalidConfig(name) => write!(f, "invalid configuration: {name}"),
        }
    }
}

impl std::error::Error for DataflowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DataflowError::TaskFailed {
            stage: "map".into(),
            task: 3,
        };
        let s = e.to_string();
        assert!(s.contains("map") && s.contains('3'));
        assert!(!DataflowError::EmptyDataset.to_string().is_empty());
        assert!(DataflowError::InvalidConfig("threads")
            .to_string()
            .contains("threads"));
    }
}
