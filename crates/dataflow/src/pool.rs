//! A shared worker thread pool.
//!
//! The engine schedules one task per partition onto this pool, mirroring
//! Spark's executor model at laptop scale. Jobs are `'static` closures; the
//! higher-level [`crate::context::Context`] wraps partition data in `Arc`s
//! so that stage closures satisfy the bound without copying records.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool fed through an MPMC channel.
///
/// Dropping the pool closes the channel and joins every worker; any queued
/// jobs finish first (graceful drain), satisfying the "destructors never
/// fail / never block indefinitely" guidance because workers always exit
/// once the queue empties.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("size", &self.size)
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool with `size` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "thread pool size must be positive");
        let (sender, receiver): (Sender<Job>, Receiver<Job>) = unbounded();
        let workers = (0..size)
            .map(|i| {
                let rx = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("dataflow-worker-{i}"))
                    .spawn(move || {
                        // Exit when the channel is closed and drained.
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
            size,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Submits a job for execution.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.sender
            .as_ref()
            .expect("pool is live while not dropped")
            .send(Box::new(job))
            .expect("workers never close the receiver first");
    }

    /// Runs `f` over every input on the pool and returns the outputs in
    /// input order. Blocks until all tasks complete.
    ///
    /// This is the engine's core scheduling primitive: one task per input.
    /// If a task panics the panic is captured and re-raised on the calling
    /// thread (fail-fast, like Spark aborting a job on task failure).
    pub fn map_ordered<I, O, F>(&self, inputs: Vec<I>, f: Arc<F>) -> Vec<O>
    where
        I: Send + 'static,
        O: Send + 'static,
        F: Fn(usize, I) -> O + Send + Sync + 'static,
    {
        let n = inputs.len();
        if n == 0 {
            return Vec::new();
        }
        // Fast path: a single input runs inline, avoiding channel overhead
        // for the very common single-partition reduce finalisation.
        if n == 1 {
            let input = inputs.into_iter().next().expect("n == 1");
            return vec![f(0, input)];
        }
        let (tx, rx) = unbounded::<(usize, std::thread::Result<O>)>();
        for (i, input) in inputs.into_iter().enumerate() {
            let tx = tx.clone();
            let f = Arc::clone(&f);
            self.execute(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, input)));
                // The receiver may be gone if the caller already panicked;
                // ignore the send error in that case.
                let _ = tx.send((i, result));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, result) = rx.recv().expect("every task sends exactly once");
            match result {
                Ok(v) => slots[i] = Some(v),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("all slots filled"))
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel lets every worker drain and exit.
        self.sender.take();
        let me = std::thread::current().id();
        for worker in self.workers.drain(..) {
            // The pool can be dropped *from* one of its own workers when a
            // task closure holds the last handle to the engine; joining
            // yourself is a guaranteed deadlock (EDEADLK), so that worker
            // is detached instead — it exits on its own once the closed
            // channel drains.
            if worker.thread().id() == me {
                continue;
            }
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_ordered_preserves_order() {
        let pool = ThreadPool::new(4);
        let out = pool.map_ordered((0..100).collect(), Arc::new(|_i, x: i32| x * x));
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn map_ordered_empty_input() {
        let pool = ThreadPool::new(2);
        let out: Vec<i32> = pool.map_ordered(Vec::<i32>::new(), Arc::new(|_i, x: i32| x));
        assert!(out.is_empty());
    }

    #[test]
    fn map_ordered_single_input_runs_inline() {
        let pool = ThreadPool::new(2);
        let tid = std::thread::current().id();
        let out = pool.map_ordered(
            vec![5i32],
            Arc::new(move |_i, x: i32| {
                assert_eq!(std::thread::current().id(), tid);
                x + 1
            }),
        );
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn actually_runs_in_parallel() {
        let pool = ThreadPool::new(4);
        let concurrent = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&concurrent);
        let p = Arc::clone(&peak);
        pool.map_ordered(
            (0..8).collect::<Vec<i32>>(),
            Arc::new(move |_i, _x| {
                let now = c.fetch_add(1, Ordering::SeqCst) + 1;
                p.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(20));
                c.fetch_sub(1, Ordering::SeqCst);
            }),
        );
        assert!(
            peak.load(Ordering::SeqCst) >= 2,
            "expected at least two tasks in flight"
        );
    }

    #[test]
    fn task_panic_propagates() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map_ordered(
                (0..4).collect::<Vec<i32>>(),
                Arc::new(|_i, x: i32| {
                    if x == 2 {
                        panic!("boom");
                    }
                    x
                }),
            );
        }));
        assert!(result.is_err());
        // Pool must remain usable after a task panic.
        let out = pool.map_ordered(vec![1, 2, 3], Arc::new(|_i, x: i32| x + 1));
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_size_rejected() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn drop_from_worker_thread_does_not_deadlock() {
        use std::sync::atomic::AtomicBool;
        // A task closure holding the last handle to the pool drops it from
        // a worker thread; the drop must detach that worker, not self-join.
        let done = Arc::new(AtomicBool::new(false));
        let pool = Arc::new(ThreadPool::new(2));
        let held = Arc::clone(&pool);
        let flag = Arc::clone(&done);
        pool.execute(move || {
            // Let the main thread release its handle first so this one is
            // the last.
            std::thread::sleep(std::time::Duration::from_millis(50));
            drop(held);
            flag.store(true, Ordering::SeqCst);
        });
        drop(pool);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while !done.load(Ordering::SeqCst) {
            assert!(
                std::time::Instant::now() < deadline,
                "worker never survived dropping the pool from itself"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(1);
            for _ in 0..16 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Pool dropped here; all 16 jobs must still run.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }
}
