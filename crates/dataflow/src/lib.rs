//! A from-scratch, in-memory, multi-threaded MapReduce dataflow engine.
//!
//! This crate is the **Spark substitute** for the UPA reproduction (see
//! `DESIGN.md` at the repository root). The paper runs UPA on Apache Spark;
//! no Spark exists here, so this engine rebuilds the part of Spark that UPA
//! actually relies on:
//!
//! * partitioned, immutable, in-memory datasets ([`Dataset`], Spark's RDD);
//! * **commutative and associative** functional operators — `map`,
//!   `filter`, `flat_map`, `reduce`, `aggregate`, and the pair operators
//!   `reduce_by_key`, `group_by_key` and `join` (see [`pair::PairOps`]);
//! * an explicit **shuffle** stage whose record counts are observable
//!   through [`metrics::Metrics`] — the paper's Figure 2(b)/4 overhead
//!   analysis is phrased in terms of how many shuffles UPA adds;
//! * task-level parallelism on a shared [`pool::ThreadPool`];
//! * **fault injection with task retry** ([`fault::FaultInjector`]):
//!   commutativity/associativity is exactly what makes re-executing a task
//!   safe, and the engine's tests demonstrate that invariant;
//! * lineage tracking ([`lineage::Lineage`]) for `explain()`-style
//!   debugging of query plans.
//!
//! # Example
//!
//! ```
//! use dataflow::Context;
//!
//! let ctx = Context::with_threads(4);
//! let ds = ctx.parallelize((0..1000).collect::<Vec<i64>>(), 8);
//! let total = ds.map(|x| x * 2).reduce(|a, b| a + b).unwrap();
//! assert_eq!(total, 999 * 1000);
//! ```

pub mod columnar;
pub mod context;
pub mod dataset;
pub mod error;
pub mod fault;
pub mod io;
pub mod lineage;
pub mod metrics;
pub mod pair;
pub mod partitioner;
pub mod pool;

pub use columnar::{
    ChunkStats, ColumnChunk, ColumnarBuf, ColumnarDataset, PruneReport, RangePredicate,
};
pub use context::{Config, Context};
pub use dataset::Dataset;
pub use error::DataflowError;
pub use metrics::{MetricsSnapshot, SpanRecorder, SpanScope, StageSpan};
pub use pair::PairOps;

/// Marker trait for record types that can flow through the engine.
///
/// Blanket-implemented for everything `Clone + Send + Sync + 'static`, the
/// same bound Spark effectively imposes through serialisability.
pub trait Data: Clone + Send + Sync + 'static {}

impl<T: Clone + Send + Sync + 'static> Data for T {}
