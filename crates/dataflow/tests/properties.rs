//! Property-based tests of the engine's operator semantics against
//! sequential reference implementations.

use dataflow::{Config, Context, PairOps};
use proptest::prelude::*;
use std::collections::HashMap;

fn ctx() -> Context {
    Context::with_threads(4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `reduce_by_key` equals a sequential HashMap fold.
    #[test]
    fn reduce_by_key_matches_reference(
        pairs in prop::collection::vec((0u8..12, -100i64..100), 0..300),
        partitions in 1usize..7,
    ) {
        let mut want: HashMap<u8, i64> = HashMap::new();
        for (k, v) in &pairs {
            *want.entry(*k).or_insert(0) += *v;
        }
        let ds = ctx().parallelize(pairs, partitions);
        let got = ds.reduce_by_key(|a, b| a + b).collect_as_map();
        prop_assert_eq!(got, want);
    }

    /// Join cardinality equals the product of per-key frequencies.
    #[test]
    fn join_cardinality_matches_reference(
        left in prop::collection::vec((0u8..6, 0u32..10), 0..100),
        right in prop::collection::vec((0u8..6, 0u32..10), 0..100),
    ) {
        let mut lf: HashMap<u8, u64> = HashMap::new();
        let mut rf: HashMap<u8, u64> = HashMap::new();
        for (k, _) in &left { *lf.entry(*k).or_insert(0) += 1; }
        for (k, _) in &right { *rf.entry(*k).or_insert(0) += 1; }
        let want: u64 = lf.iter().map(|(k, c)| c * rf.get(k).copied().unwrap_or(0)).sum();
        let c = ctx();
        let l = c.parallelize(left, 3);
        let r = c.parallelize(right, 4);
        prop_assert_eq!(l.join(&r).len() as u64, want);
    }

    /// `group_by_key` preserves every value exactly once.
    #[test]
    fn group_by_key_preserves_values(
        pairs in prop::collection::vec((0u8..8, 0i32..1000), 0..200),
    ) {
        let ds = ctx().parallelize(pairs.clone(), 4);
        let grouped = ds.group_by_key().collect();
        let mut got: Vec<(u8, i32)> = grouped
            .into_iter()
            .flat_map(|(k, vs)| vs.into_iter().map(move |v| (k, v)))
            .collect();
        got.sort_unstable();
        let mut want = pairs;
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// `distinct` equals the set of inputs.
    #[test]
    fn distinct_matches_set(values in prop::collection::vec(0u16..50, 0..300)) {
        let ds = ctx().parallelize(values.clone(), 5);
        let mut got = ds.distinct().collect();
        got.sort_unstable();
        let mut want: Vec<u16> = values.into_iter().collect::<std::collections::BTreeSet<_>>().into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// `sort_by_key` produces a globally sorted permutation for any
    /// partitioning.
    #[test]
    fn sort_by_key_is_a_sorted_permutation(
        pairs in prop::collection::vec((-100i64..100, 0u8..255), 0..300),
        partitions in 1usize..8,
    ) {
        let ds = ctx().parallelize(pairs.clone(), partitions);
        let sorted = ds.sort_by_key().collect();
        for w in sorted.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
        let mut got = sorted;
        got.sort_unstable();
        let mut want = pairs;
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// `top_k_by` equals sorting and truncating.
    #[test]
    fn top_k_matches_reference(
        values in prop::collection::vec(-1000i64..1000, 0..200),
        k in 0usize..20,
    ) {
        let ds = ctx().parallelize(values.clone(), 4);
        let got = ds.top_k_by(k, |a, b| a.cmp(b));
        let mut want = values;
        want.sort_unstable_by(|a, b| b.cmp(a));
        want.truncate(k);
        prop_assert_eq!(got, want);
    }

    /// `zip_with_index` indexes 0..n in order.
    #[test]
    fn zip_with_index_is_sequential(
        values in prop::collection::vec(0u8..255, 0..200),
        partitions in 1usize..6,
    ) {
        let ds = ctx().parallelize(values.clone(), partitions);
        let indexed = ds.zip_with_index().collect();
        prop_assert_eq!(indexed.len(), values.len());
        for (i, (idx, v)) in indexed.iter().enumerate() {
            prop_assert_eq!(*idx, i);
            prop_assert_eq!(*v, values[i]);
        }
    }

    /// A fused map→filter→flat_map chain equals the sequential reference:
    /// stage fusion must not change operator semantics for any input or
    /// partitioning.
    #[test]
    fn fused_narrow_chain_matches_reference(
        values in prop::collection::vec(-500i64..500, 0..300),
        partitions in 1usize..7,
    ) {
        let want: Vec<i64> = values
            .iter()
            .map(|v| v * 3)
            .filter(|v| v % 2 == 0)
            .flat_map(|v| [v, v + 1])
            .collect();
        let ds = ctx().parallelize(values, partitions);
        let got = ds
            .map(|v: &i64| v * 3)
            .filter(|v: &i64| v % 2 == 0)
            .flat_map(|v: &i64| [*v, *v + 1])
            .collect();
        prop_assert_eq!(got, want);
    }

    /// `reduce_by_key` with the map-side combiner produces exactly the
    /// result of the combiner-off shuffle path for any input.
    #[test]
    fn map_side_combine_matches_uncombined_path(
        pairs in prop::collection::vec((0u8..10, -50i64..50), 0..300),
        partitions in 1usize..6,
    ) {
        let combined = Context::new(Config {
            threads: 4,
            map_side_combine: true,
            ..Config::default()
        });
        let plain = Context::new(Config {
            threads: 4,
            map_side_combine: false,
            ..Config::default()
        });
        let got = combined
            .parallelize(pairs.clone(), partitions)
            .reduce_by_key(|a, b| a + b)
            .collect_as_map();
        let want = plain
            .parallelize(pairs, partitions)
            .reduce_by_key(|a, b| a + b)
            .collect_as_map();
        prop_assert_eq!(got, want);
    }

    /// `left_outer_join` keeps exactly the unmatched left rows as `None`.
    #[test]
    fn left_outer_join_matches_reference(
        left in prop::collection::vec((0u8..6, 0u32..10), 0..60),
        right in prop::collection::vec((0u8..6, 0u32..10), 0..60),
    ) {
        let mut rf: HashMap<u8, u64> = HashMap::new();
        for (k, _) in &right { *rf.entry(*k).or_insert(0) += 1; }
        let want: u64 = left
            .iter()
            .map(|(k, _)| rf.get(k).copied().unwrap_or(1).max(1))
            .sum();
        let c = ctx();
        let l = c.parallelize(left.clone(), 3);
        let r = c.parallelize(right, 3);
        let joined = l.left_outer_join(&r).collect();
        prop_assert_eq!(joined.len() as u64, want);
        let none_count = joined.iter().filter(|(_, (_, w))| w.is_none()).count();
        let want_none = left.iter().filter(|(k, _)| !rf.contains_key(k)).count();
        prop_assert_eq!(none_count, want_none);
    }
}
